package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/skyline"
)

// The extreme-set pruning contract (DESIGN.md §12) is bit-exactness,
// not approximation: every evaluator must return the identical
// float64 bits whether the max-over-D side scans the full dataset or
// only the skyline, at every worker count. These tests are the
// enforcement — d from planar to 6-dimensional, the three synthetic
// distributions, several seeds, workers hitting the inline cutoff
// (1), the bench width (4) and a non-divisor width (7).

// prunedPair builds a full-scan and a skyline-pruned EvalIndex over
// the same points, plus a GeoGreedy selection to evaluate.
func prunedPair(t *testing.T, pts []geom.Vector, k int) (*EvalIndex, *EvalIndex, []int) {
	t.Helper()
	full, err := NewEvalIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := NewEvalIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	sky, err := skyline.Of(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := pruned.SetExtreme(sky); err != nil {
		t.Fatal(err)
	}
	if !pruned.Pruned() || full.Pruned() {
		t.Fatal("pruning flags wired backwards")
	}
	res, err := GeoGreedyParCtx(context.Background(), pts, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	return full, pruned, res.Indices
}

func TestPrunedEvaluatorsBitIdentical(t *testing.T) {
	ctx := context.Background()
	gens := []struct {
		name string
		fn   func(n, d int, seed int64) ([]geom.Vector, error)
	}{
		{"independent", dataset.Independent},
		{"correlated", dataset.Correlated},
		{"anticorrelated", dataset.AntiCorrelated},
	}
	workerCounts := []int{1, 4, 7}

	for d := 2; d <= 6; d++ {
		for _, g := range gens {
			for _, seed := range []int64{3, 20140331} {
				pts, err := g.fn(220, d, seed)
				if err != nil {
					t.Fatal(err)
				}
				full, pruned, sel := prunedPair(t, pts, 5)

				// Reference values from the sequential full scan.
				refMRR, err := full.MRRGeometricParCtx(ctx, sel, 1)
				if err != nil {
					t.Fatalf("d=%d %s seed=%d: %v", d, g.name, seed, err)
				}
				refSampled, err := full.MRRSampledParCtx(ctx, sel, 48, seed, 1)
				if err != nil {
					t.Fatal(err)
				}
				refAvg, err := full.AverageRegretSampledParCtx(ctx, sel, 48, seed, 1)
				if err != nil {
					t.Fatal(err)
				}
				refW, refWitness, err := full.WorstUtilityParCtx(ctx, sel, 1)
				if err != nil {
					t.Fatal(err)
				}

				for _, x := range []struct {
					name string
					ei   *EvalIndex
				}{{"full", full}, {"pruned", pruned}} {
					for _, w := range workerCounts {
						mrr, err := x.ei.MRRGeometricParCtx(ctx, sel, w)
						if err != nil {
							t.Fatalf("d=%d %s seed=%d %s workers=%d: %v", d, g.name, seed, x.name, w, err)
						}
						if math.Float64bits(mrr) != math.Float64bits(refMRR) {
							t.Errorf("d=%d %s seed=%d %s workers=%d: MRRGeometric %v != reference %v",
								d, g.name, seed, x.name, w, mrr, refMRR)
						}
						sampled, err := x.ei.MRRSampledParCtx(ctx, sel, 48, seed, w)
						if err != nil {
							t.Fatal(err)
						}
						if math.Float64bits(sampled) != math.Float64bits(refSampled) {
							t.Errorf("d=%d %s seed=%d %s workers=%d: MRRSampled %v != reference %v",
								d, g.name, seed, x.name, w, sampled, refSampled)
						}
						avg, err := x.ei.AverageRegretSampledParCtx(ctx, sel, 48, seed, w)
						if err != nil {
							t.Fatal(err)
						}
						if math.Float64bits(avg) != math.Float64bits(refAvg) {
							t.Errorf("d=%d %s seed=%d %s workers=%d: AverageRegretSampled %v != reference %v",
								d, g.name, seed, x.name, w, avg, refAvg)
						}
						wu, witness, err := x.ei.WorstUtilityParCtx(ctx, sel, w)
						if err != nil {
							t.Fatal(err)
						}
						if witness == refWitness {
							if len(wu) != len(refW) {
								t.Fatalf("d=%d %s seed=%d %s workers=%d: weight dim %d != %d",
									d, g.name, seed, x.name, w, len(wu), len(refW))
							}
							for j := range wu {
								if math.Float64bits(wu[j]) != math.Float64bits(refW[j]) {
									t.Errorf("d=%d %s seed=%d %s workers=%d: weight[%d] %v != reference %v",
										d, g.name, seed, x.name, w, j, wu[j], refW[j])
								}
							}
						} else {
							// The documented caveat (DESIGN.md §12): the
							// pruned scan may name a different witness only
							// when a dominated point ties its dominator's
							// support to the last bit — verify the tie is
							// exact, so the regret value is still identical.
							hull, err := full.buildHull(ctx, sel)
							if err != nil {
								t.Fatal(err)
							}
							s1, _ := hull.supportOf(pts[refWitness])
							s2, _ := hull.supportOf(pts[witness])
							if math.Float64bits(s1) != math.Float64bits(s2) {
								t.Errorf("d=%d %s seed=%d %s workers=%d: witness %d (support %v) != reference %d (support %v) without an exact tie",
									d, g.name, seed, x.name, w, witness, s2, refWitness, s1)
							}
						}
					}
				}
			}
		}
	}
}

// TestPrunedRegretOfBitIdentical pins the single-utility evaluator on
// hand-picked weight shapes (axis-aligned, uniform, skewed) — the
// exactness lemma's base case.
func TestPrunedRegretOfBitIdentical(t *testing.T) {
	for d := 2; d <= 6; d++ {
		pts, err := dataset.AntiCorrelated(180, d, int64(d))
		if err != nil {
			t.Fatal(err)
		}
		full, pruned, sel := prunedPair(t, pts, 4)

		weights := []geom.Vector{
			make(geom.Vector, d), // axis e0, set below
			make(geom.Vector, d), // uniform
			make(geom.Vector, d), // skewed
		}
		weights[0][0] = 1
		for j := 0; j < d; j++ {
			weights[1][j] = 1 / float64(d)
			weights[2][j] = float64(j+1) / float64(d*d)
		}
		for wi, w := range weights {
			a, err := full.RegretOf(sel, w)
			if err != nil {
				t.Fatal(err)
			}
			b, err := pruned.RegretOf(sel, w)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Errorf("d=%d weight %d: full %v != pruned %v", d, wi, a, b)
			}
		}
	}
}

// TestSetExtremeRejectsBadInput pins the validation: the extreme set
// may come from a snapshot, so garbage must be an error, not a wrong
// answer later.
func TestSetExtremeRejectsBadInput(t *testing.T) {
	pts, err := dataset.Independent(50, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewEvalIndex(pts)
	if err != nil {
		t.Fatal(err)
	}
	for name, idx := range map[string][]int{
		"empty":         {},
		"out of range":  {0, 50},
		"negative":      {-1, 3},
		"not ascending": {4, 4},
		"descending":    {9, 2},
	} {
		if err := x.SetExtreme(idx); err == nil {
			t.Errorf("SetExtreme accepted %s extreme set %v", name, idx)
		}
	}
	if x.Pruned() {
		t.Error("rejected extreme sets must not install pruning")
	}
}
