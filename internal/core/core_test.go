package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// randomNormalized generates n strictly-positive d-dimensional points
// with per-dimension maximum 1 (the paper's normalization).
func randomNormalized(rng *rand.Rand, n, d int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = 0.02 + 0.98*rng.Float64()
		}
		pts[i] = p
	}
	for j := 0; j < d; j++ {
		maxv := 0.0
		for _, p := range pts {
			maxv = math.Max(maxv, p[j])
		}
		for _, p := range pts {
			p[j] /= maxv
		}
	}
	return pts
}

// antiCorrelated generates points near the simplex Σx = 1, which
// makes large skylines and non-trivial selections.
func antiCorrelated(rng *rand.Rand, n, d int) []geom.Vector {
	pts := make([]geom.Vector, n)
	for i := range pts {
		p := make(geom.Vector, d)
		var sum float64
		for j := range p {
			p[j] = 0.05 + rng.ExpFloat64()
			sum += p[j]
		}
		scale := (0.8 + 0.4*rng.Float64()) / sum
		for j := range p {
			p[j] = math.Min(1, math.Max(0.01, p[j]*scale))
		}
		pts[i] = p
	}
	for j := 0; j < d; j++ {
		maxv := 0.0
		for _, p := range pts {
			maxv = math.Max(maxv, p[j])
		}
		for _, p := range pts {
			p[j] /= maxv
		}
	}
	return pts
}

func TestBoundaryPoints(t *testing.T) {
	pts := []geom.Vector{{1, 0.2}, {0.3, 1}, {0.5, 0.5}}
	got := BoundaryPoints(pts)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("BoundaryPoints = %v", got)
	}
	// One point maximal in all dimensions: deduplicated.
	pts = []geom.Vector{{1, 1}, {0.5, 0.9}}
	got = BoundaryPoints(pts)
	if !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("BoundaryPoints dedupe = %v", got)
	}
	if BoundaryPoints(nil) != nil {
		t.Fatal("empty input")
	}
}

func TestValidation(t *testing.T) {
	if _, err := GeoGreedy(nil, 3); err != ErrNoPoints {
		t.Fatalf("empty: %v", err)
	}
	if _, err := GeoGreedy([]geom.Vector{{1, 1}}, 0); err != ErrBadK {
		t.Fatalf("k=0: %v", err)
	}
	if _, err := GeoGreedy([]geom.Vector{{1, 1}, {1}}, 1); err == nil {
		t.Fatal("ragged accepted")
	}
	if _, err := GeoGreedy([]geom.Vector{{1, 0}}, 1); err == nil {
		t.Fatal("zero coordinate accepted")
	}
	if _, err := GeoGreedy([]geom.Vector{{1, math.Inf(1)}}, 1); err == nil {
		t.Fatal("Inf accepted")
	}
	if _, err := Greedy(nil, 3); err != ErrNoPoints {
		t.Fatalf("greedy empty: %v", err)
	}
	if _, err := Greedy([]geom.Vector{{1, 1}}, 0); err != ErrBadK {
		t.Fatalf("greedy k=0: %v", err)
	}
}

func TestGeoGreedyTinyExact(t *testing.T) {
	// Three mutually non-dominating points; k = 3 selects all and
	// regret must be zero.
	pts := []geom.Vector{{1, 0.1}, {0.1, 1}, {0.8, 0.8}}
	res, err := GeoGreedy(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 3 {
		t.Fatalf("selected %v", res.Indices)
	}
	if res.MRR != 0 {
		t.Fatalf("MRR = %v, want 0", res.MRR)
	}
}

func TestGeoGreedyEarlyTermination(t *testing.T) {
	// Two extreme points plus many interior ones: after selecting
	// the extremes, every critical ratio is ≥ 1 and the algorithm
	// must stop with fewer than k points.
	pts := []geom.Vector{{1, 0.05}, {0.05, 1}}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		// Strictly inside the triangle hull of the two extremes.
		lam := 0.2 + 0.6*rng.Float64()
		shrink := 0.3 + 0.5*rng.Float64()
		p := geom.Vector{
			(lam*1 + (1-lam)*0.05) * shrink,
			(lam*0.05 + (1-lam)*1) * shrink,
		}
		pts = append(pts, p)
	}
	res, err := GeoGreedy(pts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.MRR != 0 {
		t.Fatalf("MRR = %v, want 0", res.MRR)
	}
	if res.ExhaustedAt < 0 || len(res.Indices) >= 10 {
		t.Fatalf("expected early termination, got %d points (exhausted %d)",
			len(res.Indices), res.ExhaustedAt)
	}
}

// TestGeoGreedyMatchesGreedy is the paper's core claim (Section
// IV-A): Greedy and GeoGreedy produce the same selection because
// line 6 computes the same argmax by different means.
func TestGeoGreedyMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(2014))
	for trial := 0; trial < 25; trial++ {
		d := 2 + rng.Intn(3)
		n := 10 + rng.Intn(40)
		k := d + rng.Intn(6)
		pts := antiCorrelated(rng, n, d)
		geo, err := GeoGreedy(pts, k)
		if err != nil {
			t.Fatalf("trial %d geo: %v", trial, err)
		}
		grd, err := Greedy(pts, k)
		if err != nil {
			t.Fatalf("trial %d greedy: %v", trial, err)
		}
		if math.Abs(geo.MRR-grd.MRR) > 1e-6 {
			t.Fatalf("trial %d: MRR geo %v vs greedy %v (sel %v vs %v)",
				trial, geo.MRR, grd.MRR, geo.Indices, grd.Indices)
		}
		if !reflect.DeepEqual(geo.Indices, grd.Indices) {
			// Ties can legitimately reorder; require same regret and
			// same set size at minimum, and matching sets in the
			// common case. Sets differing with equal regret are
			// tolerated only if a tie exists; detect by comparing
			// sorted mrr of both selections.
			m1, err1 := MRRGeometric(pts, geo.Indices)
			m2, err2 := MRRGeometric(pts, grd.Indices)
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d: eval errors %v %v", trial, err1, err2)
			}
			if math.Abs(m1-m2) > 1e-6 {
				t.Fatalf("trial %d: selections differ beyond ties: %v (%v) vs %v (%v)",
					trial, geo.Indices, m1, grd.Indices, m2)
			}
		}
	}
}

// TestDualSupportMatchesLP: the geometric support value (max over
// dual vertices) must equal the LP optimum for random selections and
// queries — Lemma 1's computational core.
func TestDualSupportMatchesLP(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(4)
		n := 8 + rng.Intn(20)
		pts := randomNormalized(rng, n, d)
		selN := d + rng.Intn(4)
		if selN > n {
			selN = n
		}
		sel := rng.Perm(n)[:selN]
		selPts := make([]geom.Vector, len(sel))
		for i, s := range sel {
			selPts[i] = pts[s]
		}
		hull, err := newDualHull(maxPerDim(selPts))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range selPts {
			if _, err := hull.insert(context.Background(), p); err != nil {
				t.Fatal(err)
			}
		}
		for probe := 0; probe < 8; probe++ {
			q := pts[rng.Intn(n)]
			geo, _ := hull.supportOf(q)
			viaLP, err := supportByLP(context.Background(), pts, sel, q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(geo-viaLP) > 1e-6*(1+viaLP) {
				t.Fatalf("trial %d: support geo %v vs LP %v (q=%v)", trial, geo, viaLP, q)
			}
		}
	}
}

// TestMRREvaluatorsAgree: Lemma 1 (geometric), the LP formulation and
// dense utility sampling must agree on the same selection.
func TestMRREvaluatorsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		d := 2 + rng.Intn(3)
		n := 10 + rng.Intn(30)
		pts := antiCorrelated(rng, n, d)
		res, err := GeoGreedy(pts, d+2)
		if err != nil {
			t.Fatal(err)
		}
		geo, err := MRRGeometric(pts, res.Indices)
		if err != nil {
			t.Fatal(err)
		}
		viaLP, err := MRRByLP(pts, res.Indices)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(geo-viaLP) > 1e-6 {
			t.Fatalf("trial %d: MRR geometric %v vs LP %v", trial, geo, viaLP)
		}
		// The algorithm's own reported MRR must match the evaluator.
		if math.Abs(geo-res.MRR) > 1e-6 {
			t.Fatalf("trial %d: reported MRR %v vs evaluated %v", trial, res.MRR, geo)
		}
		// Sampling lower-bounds and approaches the exact value.
		sampled, err := MRRSampled(pts, res.Indices, 20000, 1)
		if err != nil {
			t.Fatal(err)
		}
		if sampled > geo+1e-9 {
			t.Fatalf("trial %d: sampled %v exceeds exact %v", trial, sampled, geo)
		}
		if geo > 0.02 && sampled < geo*0.5 {
			t.Fatalf("trial %d: sampled %v far below exact %v", trial, sampled, geo)
		}
	}
}

// TestMRRMonotoneInK: adding budget can only help the greedy answer.
func TestMRRMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := antiCorrelated(rng, 60, 3)
	prev := 2.0
	for k := 3; k <= 20; k++ {
		res, err := GeoGreedy(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		if res.MRR > prev+1e-9 {
			t.Fatalf("MRR increased with k: %v at k=%d, was %v", res.MRR, k, prev)
		}
		prev = res.MRR
	}
}

// TestSelectedPointsHaveUnitCriticalRatio: for points in S on the
// hull, cr = 1 (the paper's observation before Lemma 1).
func TestSelectedPointsHaveUnitCriticalRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := antiCorrelated(rng, 30, 3)
	res, err := GeoGreedy(pts, 6)
	if err != nil {
		t.Fatal(err)
	}
	selPts := make([]geom.Vector, len(res.Indices))
	for i, s := range res.Indices {
		selPts[i] = pts[s]
	}
	hull, err := newDualHull(maxPerDim(selPts))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range selPts {
		if _, err := hull.insert(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range selPts {
		cr := hull.criticalRatio(p)
		// Selected points are on the hull boundary: cr ≤ 1 + eps.
		// Greedy-selected points are extreme, hence cr = 1 exactly.
		if math.Abs(cr-1) > 1e-7 {
			t.Fatalf("selected point %d has cr = %v, want 1", i, cr)
		}
	}
}

func TestStoredListMatchesGeoGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := antiCorrelated(rng, 50, 3)
	list, err := BuildStoredList(pts)
	if err != nil {
		t.Fatal(err)
	}
	for k := 3; k <= list.Len(); k += 2 {
		fromList, err := list.Query(k)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := GeoGreedy(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fromList, direct.Indices) {
			t.Fatalf("k=%d: list %v vs direct %v", k, fromList, direct.Indices)
		}
		mrr, err := list.MRRFor(k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mrr-direct.MRR) > 1e-9 {
			t.Fatalf("k=%d: list MRR %v vs direct %v", k, mrr, direct.MRR)
		}
	}
	// Query beyond list length returns the whole list.
	all, err := list.Query(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != list.Len() {
		t.Fatalf("oversized query returned %d of %d", len(all), list.Len())
	}
	if _, err := list.Query(0); err != ErrBadK {
		t.Fatalf("k=0: %v", err)
	}
}

func TestStoredListCoversHullThenStops(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := antiCorrelated(rng, 40, 2)
	list, err := BuildStoredList(pts)
	if err != nil {
		t.Fatal(err)
	}
	// The full list has zero regret.
	mrr, err := list.MRRFor(list.Len())
	if err != nil {
		t.Fatal(err)
	}
	if mrr > 1e-9 {
		t.Fatalf("full-list MRR = %v, want 0", mrr)
	}
	// And it should not contain every candidate (interior points are
	// never selected).
	if list.Len() == len(pts) {
		t.Skip("degenerate draw: every candidate extreme")
	}
}

func TestKLessThanD(t *testing.T) {
	// Paper Section VII: with k < d even the optimum is unbounded;
	// the implementation still answers with its best effort.
	delta := 0.01
	pts := []geom.Vector{
		{delta, delta, delta, 1},
		{delta, delta, 1, delta},
		{delta, 1, delta, delta},
		{1, delta, delta, delta},
	}
	res, err := GeoGreedy(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 3 {
		t.Fatalf("selected %d points, want 3", len(res.Indices))
	}
	mrr, err := MRRGeometric(pts, res.Indices)
	if err != nil {
		t.Fatal(err)
	}
	if mrr < 0.9 {
		t.Fatalf("k<d regret = %v, want near 1 (unbounded case)", mrr)
	}
}

func TestSelectHelper(t *testing.T) {
	pts := []geom.Vector{{1, 1}, {0.5, 0.5}}
	got, err := Select(pts, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(pts[1], 0) || !got[1].Equal(pts[0], 0) {
		t.Fatal("Select wrong order")
	}
	if _, err := Select(pts, []int{2}); err == nil {
		t.Fatal("out of range accepted")
	}
	if _, err := Select(pts, []int{-1}); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestEvaluateErrors(t *testing.T) {
	pts := []geom.Vector{{1, 1}, {0.5, 0.5}}
	if _, err := MRRGeometric(pts, nil); err != ErrEmptySelection {
		t.Fatalf("empty selection: %v", err)
	}
	if _, err := MRRGeometric(pts, []int{5}); err == nil {
		t.Fatal("out-of-range selection accepted")
	}
	if _, err := MRRSampled(pts, []int{0}, 0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := RegretOf(pts, []int{0}, geom.Vector{1}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if _, err := RegretOf(pts, []int{0}, geom.Vector{-1, 1}); err == nil {
		t.Fatal("negative weights accepted")
	}
}

func TestRegretOfKnown(t *testing.T) {
	// The paper's Table II example: S = {p2, p3}, f = (0.7 MPG, 0.3 HP)
	// gives rr = 1 − 0.811/0.916 ≈ 0.115.
	pts := []geom.Vector{
		{0.94, 0.80},
		{0.76, 0.93},
		{0.67, 1.00},
		{1.00, 0.72},
	}
	r, err := RegretOf(pts, []int{1, 2}, geom.Vector{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 0.811/0.916
	if math.Abs(r-want) > 1e-3 {
		t.Fatalf("regret = %v, want %v", r, want)
	}
	// f = (0.3, 0.7): p3 is the overall best and is selected → 0.
	r, err = RegretOf(pts, []int{1, 2}, geom.Vector{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("regret = %v, want 0", r)
	}
}

func TestWorstUtility(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := antiCorrelated(rng, 40, 3)
	res, err := GeoGreedy(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, witness, err := WorstUtility(pts, res.Indices)
	if err != nil {
		t.Fatal(err)
	}
	if res.MRR > 1e-6 {
		if w == nil || witness < 0 {
			t.Fatalf("no worst utility despite MRR %v", res.MRR)
		}
		// The regret of that utility must equal the MRR.
		r, err := RegretOf(pts, res.Indices, w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-res.MRR) > 1e-6 {
			t.Fatalf("worst utility regret %v vs MRR %v", r, res.MRR)
		}
	}
	// Full selection → zero regret → no witness.
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	w, witness, err = WorstUtility(pts, all)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil || witness != -1 {
		t.Fatalf("full-selection worst utility = %v, %d", w, witness)
	}
}

func TestAverageRegretLeqMax(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := antiCorrelated(rng, 30, 3)
	res, err := GeoGreedy(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := AverageRegretSampled(pts, res.Indices, 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	maxr, err := MRRGeometric(pts, res.Indices)
	if err != nil {
		t.Fatal(err)
	}
	if avg > maxr+1e-9 {
		t.Fatalf("average regret %v exceeds max %v", avg, maxr)
	}
}
