package core

import (
	"bytes"
	"encoding/gob"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func gobEncode(w io.Writer, v any) error { return gob.NewEncoder(w).Encode(v) }

func TestStoredListSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := antiCorrelated(rng, 60, 3)
	list, err := BuildStoredList(pts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := list.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStoredList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != list.Len() || loaded.Dim() != list.Dim() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", loaded.Len(), loaded.Dim(), list.Len(), list.Dim())
	}
	for k := 1; k <= list.Len(); k++ {
		a, err := list.Query(k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Query(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("k=%d: %v vs %v", k, a, b)
		}
		ma, _ := list.MRRFor(k)
		mb, _ := loaded.MRRFor(k)
		if ma != mb {
			t.Fatalf("k=%d: regret %v vs %v", k, ma, mb)
		}
	}
}

func TestLoadStoredListRejectsCorruption(t *testing.T) {
	if _, err := LoadStoredList(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid gob but inconsistent content.
	cases := []storedListWire{
		{Version: 99, Dim: 2, NCand: 3, Order: []int{0}, MRRAt: []float64{0}},
		{Version: storedListVersion, Dim: 0, NCand: 3, Order: []int{0}, MRRAt: []float64{0}},
		{Version: storedListVersion, Dim: 2, NCand: 2, Order: []int{0, 1, 1}, MRRAt: []float64{0, 0, 0}},
		{Version: storedListVersion, Dim: 2, NCand: 3, Order: []int{0, 0}, MRRAt: []float64{0, 0}},
		{Version: storedListVersion, Dim: 2, NCand: 3, Order: []int{5}, MRRAt: []float64{0}},
		{Version: storedListVersion, Dim: 2, NCand: 3, Order: []int{0}, MRRAt: []float64{2}},
		{Version: storedListVersion, Dim: 2, NCand: 3, Order: []int{0, 1}, MRRAt: []float64{0}},
	}
	for i, w := range cases {
		var buf bytes.Buffer
		enc := encodeWire(t, w)
		buf.Write(enc)
		if _, err := LoadStoredList(&buf); err == nil {
			t.Fatalf("case %d accepted: %+v", i, w)
		}
	}
}

func encodeWire(t *testing.T, w storedListWire) []byte {
	t.Helper()
	var buf bytes.Buffer
	s := &StoredList{order: w.Order, mrrAt: w.MRRAt, dim: w.Dim, nCand: w.NCand}
	_ = s
	// Encode manually to bypass Save's assumptions.
	if err := gobEncode(&buf, w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
