package core

import (
	"errors"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/happy"
)

// ErrNeed2D is returned by Exact2D for non-planar input.
var ErrNeed2D = errors.New("core: Exact2D requires 2-dimensional points")

// Exact2D solves the MRRM problem optimally for d = 2 — a capability
// beyond the paper (whose algorithms are greedy heuristics in every
// dimension), used here to measure how close GeoGreedy gets to the
// true optimum on planar data.
//
// Method: for a fixed regret budget r, point p "covers" direction
// angle θ when ω(θ)·p ≥ (1−r)·max_q ω(θ)·q. Each dataset point q
// constrains p's coverage to a contiguous arc of [0, π/2] (a
// halfplane cut of the quarter circle), so p's coverage is an
// interval, and "mrr(S) ≤ r" becomes "the intervals of S cover
// [0, π/2]" — a minimum interval cover, solvable greedily. The
// optimal regret is found by binary search on r; by Lemma 2 only
// happy points need to be considered. The returned MRR is evaluated
// exactly on the final selection (Lemma 1), so it is not merely an
// upper bound from the search tolerance.
func Exact2D(pts []geom.Vector, k int) (*Result, error) {
	d, err := validatePoints(pts)
	if err != nil {
		return nil, err
	}
	if d != 2 {
		return nil, ErrNeed2D
	}
	if k < 1 {
		return nil, ErrBadK
	}

	// Candidate reduction (Lemma 2): an optimal solution exists
	// within the happy points. Falling back to all points would be
	// correct but slower.
	cand := happyIndices(pts)

	// Feasibility oracle at regret budget r: can ≤ k candidate
	// intervals cover the quarter circle?
	feasible := func(r float64) ([]int, bool) {
		return coverWithBudget(pts, cand, r, k)
	}

	if sel, ok := feasible(0); ok {
		mrr, err := MRRGeometric(pts, sel)
		if err != nil {
			return nil, err
		}
		return &Result{Indices: sel, MRR: mrr, ExhaustedAt: -1}, nil
	}
	lo, hi := 0.0, 1.0
	var best []int
	for iter := 0; iter < 64; iter++ {
		mid := (lo + hi) / 2
		if sel, ok := feasible(mid); ok {
			best, hi = sel, mid
		} else {
			lo = mid
		}
	}
	if best == nil {
		// r → 1 is always feasible with any single point covering
		// everything; reaching here indicates numerical trouble.
		return nil, errors.New("core: Exact2D search failed to find a feasible selection")
	}
	mrr, err := MRRGeometric(pts, best)
	if err != nil {
		return nil, err
	}
	return &Result{Indices: best, MRR: mrr, ExhaustedAt: -1}, nil
}

// happyIndices computes the happy points (package happy is already a
// dependency of conv.go). On the unreachable error path it degrades
// to the full index set, which is correct but slower.
func happyIndices(pts []geom.Vector) []int {
	hp, err := happy.Compute(pts)
	if err != nil || len(hp) == 0 {
		hp = make([]int, len(pts))
		for i := range hp {
			hp[i] = i
		}
	}
	return hp
}

// interval is a closed arc [lo, hi] of direction angles.
type interval struct {
	lo, hi float64
	idx    int
}

// coverageInterval returns the arc of [0, π/2] that candidate p
// covers at budget r, or ok=false when it covers nothing.
func coverageInterval(pts []geom.Vector, cand []int, p geom.Vector, r float64) (float64, float64, bool) {
	lo, hi := 0.0, math.Pi/2
	scale := 1 - r
	for _, qi := range cand {
		q := pts[qi]
		vx := p[0] - scale*q[0]
		vy := p[1] - scale*q[1]
		switch {
		case vx >= 0 && vy >= 0:
			// No constraint from q.
		case vx < 0 && vy < 0:
			return 0, 0, false
		case vx >= 0: // vy < 0: covered for θ ≤ θ*
			theta := math.Atan2(vx, -vy)
			if theta < hi {
				hi = theta
			}
		default: // vx < 0, vy ≥ 0: covered for θ ≥ θ*
			// f(θ) = vx cosθ + vy sinθ ≥ 0 ⟺ tanθ ≥ −vx/vy.
			theta := math.Atan2(-vx, vy)
			if theta > lo {
				lo = theta
			}
		}
		if lo > hi+1e-12 {
			return 0, 0, false
		}
	}
	return lo, hi, true
}

// coverWithBudget runs the classic greedy minimum interval cover of
// [0, π/2] and reports a selection of at most k candidates, if one
// exists at budget r.
func coverWithBudget(pts []geom.Vector, cand []int, r float64, k int) ([]int, bool) {
	const eps = 1e-12
	ivs := make([]interval, 0, len(cand))
	for _, ci := range cand {
		lo, hi, ok := coverageInterval(pts, cand, pts[ci], r)
		if ok {
			ivs = append(ivs, interval{lo: lo, hi: hi, idx: ci})
		}
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].lo < ivs[b].lo })
	var sel []int
	covered := 0.0
	i := 0
	for covered < math.Pi/2-eps {
		bestHi := covered
		bestIdx := -1
		for ; i < len(ivs) && ivs[i].lo <= covered+eps; i++ {
			if ivs[i].hi > bestHi {
				bestHi = ivs[i].hi
				bestIdx = ivs[i].idx
			}
		}
		if bestIdx < 0 {
			return nil, false // gap
		}
		sel = append(sel, bestIdx)
		if len(sel) > k {
			return nil, false
		}
		covered = bestHi
	}
	sort.Ints(sel)
	return sel, true
}
