// Package core implements the paper's k-regret query algorithms —
// GeoGreedy and StoredList (Peng & Wong, ICDE 2014) — together with
// the best-known baseline they are measured against (Greedy,
// Nanongkai et al., VLDB 2010), exact and sampled regret evaluation,
// and extraction of the candidate sets D_conv, D_happy and D_sky.
//
// All algorithms operate on a candidate slice of strictly positive
// d-dimensional points and return indices into it. By the paper's
// Lemma 2 the optimal solution lives inside the happy points, so the
// intended pipeline is:
//
//	sky, _  := skyline.Of(points)
//	happy   := happy.ComputeAmongSkyline(points, sky)
//	cand    := core.Select(points, happy)       // gather candidates
//	res, _  := core.GeoGreedy(cand, k)
//
// The top-level package kregret wires this pipeline behind a
// friendlier API.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dd"
	"repro/internal/geom"
	"repro/internal/lp"
)

// Input validation errors.
var (
	ErrNoPoints  = errors.New("core: no candidate points")
	ErrBadPoint  = errors.New("core: bad candidate point")
	ErrBadK      = errors.New("core: k must be at least 1")
	ErrBadSubset = errors.New("core: selection index out of range")
)

// ErrDegenerate marks a numerical failure of the geometry machinery
// mid-run — a NaN critical ratio, a support cache gone non-finite —
// as opposed to invalid input. Callers (package kregret) treat it,
// together with dd degeneracy and LP iteration caps, as retriable via
// the degradation chain.
var ErrDegenerate = errors.New("core: numerical degeneracy")

// IsNumerical reports whether err is a numerical failure of the
// solvers — GeoGreedy degeneracy, a dd polytope collapsing to empty,
// or the simplex iteration cap — rather than invalid input or
// cancellation. These are exactly the failures for which retrying
// with perturbed data or a more robust (if slower or weaker)
// algorithm can still produce an answer.
func IsNumerical(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, ErrDegenerate) ||
		errors.Is(err, dd.ErrEmpty) ||
		errors.Is(err, lp.ErrIterationCap)
}

// Result is the outcome of a k-regret algorithm.
type Result struct {
	// Indices of the selected points within the candidate slice, in
	// selection order: first the d dimension boundary points, then
	// one point per greedy iteration.
	Indices []int
	// MRR is the maximum regret ratio of the selection measured
	// against the candidate set (exact for the full dataset whenever
	// the candidates include all of D_conv — in particular for happy
	// or skyline candidates, by Lemma 2/3).
	MRR float64
	// ExhaustedAt, when ≥ 0, records the selection size at which the
	// regret hit zero and the algorithm stopped early (|Conv(D)| ≤ k
	// case in the paper). −1 when the full budget k was used.
	ExhaustedAt int
}

// validatePoints checks the candidate slice: non-empty, uniform
// dimension, finite, strictly positive (the paper's standing
// assumptions after normalization).
func validatePoints(pts []geom.Vector) (int, error) {
	if len(pts) == 0 {
		return 0, ErrNoPoints
	}
	d := len(pts[0])
	if d < 1 {
		return 0, fmt.Errorf("%w: zero-dimensional point", ErrBadPoint)
	}
	for i, p := range pts {
		if len(p) != d {
			return 0, fmt.Errorf("%w: point %d has dimension %d, want %d", ErrBadPoint, i, len(p), d)
		}
		if !p.IsFinite() {
			return 0, fmt.Errorf("%w: point %d has non-finite coordinates", ErrBadPoint, i)
		}
		if !p.AllPositive() {
			return 0, fmt.Errorf("%w: point %d (%v) must be strictly positive", ErrBadPoint, i, p)
		}
	}
	return d, nil
}

// Select gathers pts[idx] for each index, preserving order — a
// convenience for building candidate slices from skyline/happy index
// sets.
func Select(pts []geom.Vector, idx []int) ([]geom.Vector, error) {
	out := make([]geom.Vector, len(idx))
	for i, j := range idx {
		if j < 0 || j >= len(pts) {
			return nil, fmt.Errorf("%w: %d (n=%d)", ErrBadSubset, j, len(pts))
		}
		out[i] = pts[j]
	}
	return out, nil
}

// BoundaryPoints returns, for each dimension, the index of a point
// maximizing that dimension (smallest index on ties), deduplicated
// while preserving dimension order — the seed set of both Greedy and
// GeoGreedy (Algorithm 1, lines 2–4).
func BoundaryPoints(pts []geom.Vector) []int {
	if len(pts) == 0 {
		return nil
	}
	d := len(pts[0])
	seen := make(map[int]bool, d)
	out := make([]int, 0, d)
	for j := 0; j < d; j++ {
		best := 0
		for i := 1; i < len(pts); i++ {
			if pts[i][j] > pts[best][j] {
				best = i
			}
		}
		if !seen[best] {
			seen[best] = true
			out = append(out, best)
		}
	}
	return out
}

// maxPerDim returns the per-dimension maxima of pts.
func maxPerDim(pts []geom.Vector) []float64 {
	d := len(pts[0])
	maxs := make([]float64, d)
	for _, p := range pts {
		for j, x := range p {
			if x > maxs[j] {
				maxs[j] = x
			}
		}
	}
	return maxs
}
