package core

import "sync"

// floatScratchPool recycles the per-iteration float buffers of the
// hot paths (Greedy's per-candidate LP optima, the sampled regret
// vectors). With intra-query parallelism these buffers are filled
// concurrently and folded sequentially every greedy iteration, so
// allocating them fresh each time would put the allocator on the
// critical path.
var floatScratchPool sync.Pool

// floatScratch returns a length-n float slice with unspecified
// contents; the caller must write every entry it later reads. Pair
// with putFloatScratch.
func floatScratch(n int) []float64 {
	if v := floatScratchPool.Get(); v != nil {
		if s := *(v.(*[]float64)); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

// putFloatScratch returns a scratch slice to the pool.
func putFloatScratch(s []float64) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	floatScratchPool.Put(&s)
}

// intScratchPool recycles the per-chunk int buffers of the batched
// support scans (GeoGreedy's vertex-ID side channel).
var intScratchPool sync.Pool

// intScratch returns a length-n int slice with unspecified contents;
// the caller must write every entry it later reads. Pair with
// putIntScratch.
func intScratch(n int) []int {
	if v := intScratchPool.Get(); v != nil {
		if s := *(v.(*[]int)); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]int, n)
}

// putIntScratch returns a scratch slice to the pool.
func putIntScratch(s []int) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	intScratchPool.Put(&s)
}

// candStatePool recycles GeoGreedy's per-query candidate-state array —
// 24 bytes per candidate, the second-largest per-query allocation at
// paper scale after the flattened point matrix.
var candStatePool sync.Pool

// candStateScratch returns a length-n zeroed candState slice. Pair
// with putCandStateScratch.
func candStateScratch(n int) []candState {
	if v := candStatePool.Get(); v != nil {
		if s := *(v.(*[]candState)); cap(s) >= n {
			s = s[:n]
			for i := range s {
				s[i] = candState{}
			}
			return s
		}
	}
	return make([]candState, n)
}

// putCandStateScratch returns a scratch slice to the pool.
func putCandStateScratch(s []candState) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	candStatePool.Put(&s)
}
