package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// ErrBadStoredList is returned when decoding a stored list that is
// corrupt or internally inconsistent.
var ErrBadStoredList = errors.New("core: bad stored list encoding")

// storedListWire is the gob wire format of a StoredList. The format
// is versioned so later releases can evolve it.
type storedListWire struct {
	Version  int
	Dim      int
	NCand    int
	Complete bool
	Order    []int
	MRRAt    []float64
}

const storedListVersion = 1

// wireManifest pins the gob wire layout of every struct this package
// persists (checked by the wireguard analyzer): changing a field
// means rewriting the entry on this line, which is where the version
// bump and the decoder's compat path get reviewed together.
var wireManifest = map[string]string{
	"storedListWire": "v1 Version int; Dim int; NCand int; Complete bool; Order []int; MRRAt []float64",
}

// Save serializes the materialized list. The candidate set itself is
// not stored — the caller must pair the list with the exact
// candidates it was built from (package kregret's Index.Save stores a
// dataset checksum for that purpose).
func (s *StoredList) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	return enc.Encode(storedListWire{
		Version:  storedListVersion,
		Dim:      s.dim,
		NCand:    s.nCand,
		Complete: s.complete,
		Order:    s.order,
		MRRAt:    s.mrrAt,
	})
}

// LoadStoredList decodes a list written by Save and validates its
// internal consistency (index ranges, one regret per entry, regret
// non-increasing along the prefix order).
func LoadStoredList(r io.Reader) (*StoredList, error) {
	var wire storedListWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStoredList, err)
	}
	if wire.Version != storedListVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadStoredList, wire.Version, storedListVersion)
	}
	if wire.Dim < 1 || wire.NCand < 1 {
		return nil, fmt.Errorf("%w: dim=%d candidates=%d", ErrBadStoredList, wire.Dim, wire.NCand)
	}
	if len(wire.Order) != len(wire.MRRAt) {
		return nil, fmt.Errorf("%w: %d order entries but %d regrets", ErrBadStoredList, len(wire.Order), len(wire.MRRAt))
	}
	if len(wire.Order) > wire.NCand {
		return nil, fmt.Errorf("%w: list longer (%d) than candidate set (%d)", ErrBadStoredList, len(wire.Order), wire.NCand)
	}
	seen := make(map[int]bool, len(wire.Order))
	for i, idx := range wire.Order {
		if idx < 0 || idx >= wire.NCand {
			return nil, fmt.Errorf("%w: index %d out of range", ErrBadStoredList, idx)
		}
		if seen[idx] {
			return nil, fmt.Errorf("%w: duplicate index %d", ErrBadStoredList, idx)
		}
		seen[idx] = true
		if mrr := wire.MRRAt[i]; mrr < 0 || mrr > 1 {
			return nil, fmt.Errorf("%w: regret %v out of range", ErrBadStoredList, mrr)
		}
	}
	return &StoredList{
		order:    wire.Order,
		mrrAt:    wire.MRRAt,
		dim:      wire.Dim,
		nCand:    wire.NCand,
		complete: wire.Complete,
	}, nil
}
