package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// ErrEmptySelection is returned when evaluating an empty selection.
var ErrEmptySelection = errors.New("core: empty selection")

// checkSelection validates a selection index set against the dataset.
func checkSelection(pts []geom.Vector, sel []int) error {
	if len(sel) == 0 {
		return ErrEmptySelection
	}
	for _, i := range sel {
		if i < 0 || i >= len(pts) {
			return fmt.Errorf("%w: %d (n=%d)", ErrBadSubset, i, len(pts))
		}
	}
	return nil
}

// MRRGeometric computes the exact maximum regret ratio of the
// selection sel over the dataset pts using the paper's Lemma 1:
// mrr(S) = 1 − min_q cr(q, S), with critical ratios read off the dual
// hull of S. This is the reference evaluation used by all experiment
// harnesses.
func MRRGeometric(pts []geom.Vector, sel []int) (float64, error) {
	return MRRGeometricCtx(context.Background(), pts, sel)
}

// MRRGeometricCtx is MRRGeometric with cooperative cancellation: the
// context is checked inside every dual-hull insertion and once per
// support-scan batch. The returned error wraps ctx.Err() when
// canceled.
func MRRGeometricCtx(ctx context.Context, pts []geom.Vector, sel []int) (float64, error) {
	return MRRGeometricParCtx(ctx, pts, sel, 1)
}

// MRRGeometricParCtx is MRRGeometricCtx with intra-query parallelism:
// the per-point support scan over the selection's dual hull fans out
// over up to `workers` goroutines (0 = the process default, 1 = the
// exact sequential path). The hull is read-only during the scan and
// the max reduction is order-independent, so the result is identical
// for every worker count; a NaN support poisons the reduction and
// surfaces as ErrDegenerate instead of being silently dropped.
//
// The free function builds a transient unpruned EvalIndex per call;
// callers evaluating the same dataset repeatedly should hold an
// EvalIndex (optionally with its extreme set installed) and use its
// methods, which is what package kregret's Dataset does.
func MRRGeometricParCtx(ctx context.Context, pts []geom.Vector, sel []int, workers int) (float64, error) {
	x, err := NewEvalIndex(pts)
	if err != nil {
		return 0, err
	}
	return x.MRRGeometricParCtx(ctx, sel, workers)
}

// MRRByLP computes the same quantity with one linear program per
// dataset point (the formulation the Greedy baseline uses). It is
// slower than MRRGeometric and exists as an independent oracle: the
// two must agree to tolerance on every input.
func MRRByLP(pts []geom.Vector, sel []int) (float64, error) {
	return MRRByLPCtx(context.Background(), pts, sel)
}

// MRRByLPCtx is MRRByLP with cooperative cancellation: the context is
// checked inside every per-point simplex solve, so a deadline stops
// the oracle mid-scan. The returned error wraps ctx.Err() when
// canceled.
func MRRByLPCtx(ctx context.Context, pts []geom.Vector, sel []int) (float64, error) {
	if _, err := validatePoints(pts); err != nil {
		return 0, err
	}
	if err := checkSelection(pts, sel); err != nil {
		return 0, err
	}
	mrr := 0.0
	for _, q := range pts {
		z, err := supportByLP(ctx, pts, sel, q)
		if err != nil {
			return 0, err
		}
		if math.IsInf(z, 1) {
			return 1, nil // selection does not span all dimensions
		}
		if z > 1 {
			if r := 1 - 1/z; r > mrr {
				mrr = r
			}
		}
	}
	return mrr, nil
}

// MRRSampled estimates the maximum regret ratio by evaluating the
// regret of `samples` random linear utility functions with weight
// vectors uniform on the non-negative unit sphere. It lower-bounds
// the exact value and converges to it; useful as a sanity oracle and
// for utility classes without geometric structure.
func MRRSampled(pts []geom.Vector, sel []int, samples int, seed int64) (float64, error) {
	return MRRSampledParCtx(context.Background(), pts, sel, samples, seed, 1)
}

// MRRSampledParCtx is MRRSampled with cooperative cancellation and
// intra-query parallelism. The utilities are drawn sequentially from
// the seeded generator (so the sample set is identical for every
// worker count), their regrets are evaluated in parallel into
// per-sample slots, and the max fold is order-independent — the
// estimate is byte-identical to the sequential one.
func MRRSampledParCtx(ctx context.Context, pts []geom.Vector, sel []int, samples int, seed int64, workers int) (float64, error) {
	x, err := NewEvalIndex(pts)
	if err != nil {
		return 0, err
	}
	return x.MRRSampledParCtx(ctx, sel, samples, seed, workers)
}

// sampleCtxBatch is the number of per-utility regret evaluations
// between cancellation checks; each evaluation already scans the full
// dataset, so a small batch keeps cancellation prompt.
const sampleCtxBatch = 16

// AverageRegretSampled estimates the average regret ratio of the
// selection over utility functions drawn uniformly from the
// non-negative unit sphere — the paper's first "future direction"
// (Section VIII), provided as an extension.
func AverageRegretSampled(pts []geom.Vector, sel []int, samples int, seed int64) (float64, error) {
	return AverageRegretSampledParCtx(context.Background(), pts, sel, samples, seed, 1)
}

// AverageRegretSampledParCtx is AverageRegretSampled with cooperative
// cancellation and intra-query parallelism. Regrets are evaluated in
// parallel into per-sample slots but summed sequentially in sample
// order — float addition is order-dependent, and the sequential fold
// keeps the estimate byte-identical for every worker count.
func AverageRegretSampledParCtx(ctx context.Context, pts []geom.Vector, sel []int, samples int, seed int64, workers int) (float64, error) {
	x, err := NewEvalIndex(pts)
	if err != nil {
		return 0, err
	}
	return x.AverageRegretSampledParCtx(ctx, sel, samples, seed, workers)
}

// RegretOf returns rr(S, f) for the linear utility with weight
// vector w (Definition 1): 1 − max_{p∈S} w·p / max_{q∈D} w·q.
func RegretOf(pts []geom.Vector, sel []int, w geom.Vector) (float64, error) {
	x, err := NewEvalIndex(pts)
	if err != nil {
		return 0, err
	}
	return x.RegretOf(sel, w)
}

// randomUtility draws a weight vector uniformly from the unit sphere
// restricted to the non-negative orthant (absolute Gaussian
// components, normalized).
func randomUtility(rng *rand.Rand, d int) geom.Vector {
	w := make(geom.Vector, d)
	randomUtilityInto(rng, w)
	return w
}

// randomUtilityInto is randomUtility writing into caller-provided
// storage — the sampled evaluators draw thousands per call and pool
// one flat backing instead.
func randomUtilityInto(rng *rand.Rand, w geom.Vector) {
	for {
		var norm float64
		for j := range w {
			w[j] = math.Abs(rng.NormFloat64())
			norm += w[j] * w[j]
		}
		if norm > 1e-18 {
			norm = math.Sqrt(norm)
			for j := range w {
				w[j] /= norm
			}
			return
		}
	}
}

// WorstUtility returns a maximum regret ratio function of the
// selection (Definition 2): the facet normal of Conv(S) whose
// critical point realizes the minimum critical ratio, normalized to
// unit length, together with the index of the witness point in pts
// that attains the regret. When the regret is zero it returns a nil
// vector and witness −1.
func WorstUtility(pts []geom.Vector, sel []int) (geom.Vector, int, error) {
	return WorstUtilityCtx(context.Background(), pts, sel)
}

// WorstUtilityCtx is WorstUtility with cooperative cancellation (see
// MRRGeometricCtx for the check granularity).
func WorstUtilityCtx(ctx context.Context, pts []geom.Vector, sel []int) (geom.Vector, int, error) {
	return WorstUtilityParCtx(ctx, pts, sel, 1)
}

// WorstUtilityParCtx is WorstUtilityCtx with intra-query parallelism,
// mirroring the other ParCtx signatures: the per-point support scan
// fans out over up to `workers` goroutines (0 = the process default,
// 1 = the exact sequential path) and the witness fold runs
// sequentially in index order, so the answer is byte-identical at
// every worker count.
func WorstUtilityParCtx(ctx context.Context, pts []geom.Vector, sel []int, workers int) (geom.Vector, int, error) {
	x, err := NewEvalIndex(pts)
	if err != nil {
		return nil, -1, err
	}
	return x.WorstUtilityParCtx(ctx, sel, workers)
}

// SupportByLPForTest exposes the Greedy candidate LP to tests in
// other packages (cross-checking GeoGreedy's dual support values).
func SupportByLPForTest(ctx context.Context, pts []geom.Vector, sel []int, q geom.Vector) (float64, error) {
	return supportByLP(ctx, pts, sel, q)
}
