package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestExact2DValidation(t *testing.T) {
	if _, err := Exact2D(nil, 2); err != ErrNoPoints {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Exact2D([]geom.Vector{{1, 1, 1}}, 2); err != ErrNeed2D {
		t.Fatalf("3d: %v", err)
	}
	if _, err := Exact2D([]geom.Vector{{1, 1}}, 0); err != ErrBadK {
		t.Fatalf("k=0: %v", err)
	}
}

func TestExact2DZeroRegretWhenHullFits(t *testing.T) {
	pts := []geom.Vector{{1, 0.1}, {0.1, 1}, {0.7, 0.7}, {0.4, 0.4}}
	res, err := Exact2D(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MRR > 1e-9 {
		t.Fatalf("mrr = %v, want 0 (all hull points fit)", res.MRR)
	}
}

// bruteForceOptimal2D enumerates all k-subsets of the happy points
// and returns the minimal exact regret.
func bruteForceOptimal2D(t *testing.T, pts []geom.Vector, k int) float64 {
	t.Helper()
	cand := happyIndices(pts)
	best := math.Inf(1)
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) == k || start == len(cand) {
			if len(chosen) == 0 {
				return
			}
			mrr, err := MRRGeometric(pts, chosen)
			if err != nil {
				t.Fatal(err)
			}
			if mrr < best {
				best = mrr
			}
			return
		}
		rec(start+1, append(chosen, cand[start]))
		rec(start+1, chosen)
	}
	rec(0, nil)
	return best
}

// TestExact2DMatchesBruteForce: the binary-search cover solution must
// match exhaustive enumeration on small instances.
func TestExact2DMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(8)
		pts := antiCorrelated(rng, n, 2)
		k := 2 + rng.Intn(3)
		res, err := Exact2D(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceOptimal2D(t, pts, k)
		if res.MRR > want+1e-6 {
			t.Fatalf("trial %d (n=%d k=%d): Exact2D mrr %v, brute force %v",
				trial, n, k, res.MRR, want)
		}
		// And it cannot beat the true optimum.
		if res.MRR < want-1e-6 {
			t.Fatalf("trial %d: Exact2D %v below brute-force optimum %v (bug in one of them)",
				trial, res.MRR, want)
		}
		if len(res.Indices) > k {
			t.Fatalf("trial %d: %d points for k=%d", trial, len(res.Indices), k)
		}
	}
}

// TestExact2DNeverWorseThanGeoGreedy: the optimal solution is at
// least as good as the greedy heuristic.
func TestExact2DNeverWorseThanGeoGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		pts := antiCorrelated(rng, 30+rng.Intn(50), 2)
		k := 2 + rng.Intn(6)
		exact, err := Exact2D(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := GeoGreedy(pts, k)
		if err != nil {
			t.Fatal(err)
		}
		if exact.MRR > greedy.MRR+1e-6 {
			t.Fatalf("trial %d: exact %v worse than greedy %v", trial, exact.MRR, greedy.MRR)
		}
	}
}

// TestExact2DPaperGapExample: on configurations like the paper's
// Lemma 5 discussion, the optimal selection can include non-hull
// happy points; Exact2D must handle them.
func TestExact2DUsesHappyNonConvWhenOptimal(t *testing.T) {
	// Three hull extremes widely spread plus a happy point in the
	// middle that covers the gap better than any single extreme.
	pts := []geom.Vector{
		{1.00, 0.05},
		{0.05, 1.00},
		{0.78, 0.78}, // hull extreme
		{0.70, 0.86}, // happy, just below hull
		{0.86, 0.70}, // happy, just below hull
	}
	res, err := Exact2D(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	grd, err := GeoGreedy(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MRR > grd.MRR+1e-9 {
		t.Fatalf("exact %v worse than greedy %v", res.MRR, grd.MRR)
	}
}

func TestAverageGreedyBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := antiCorrelated(rng, 80, 3)
	res, err := AverageGreedy(pts, 6, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 6 {
		t.Fatalf("selected %d", len(res.Indices))
	}
	if res.MRR < 0 || res.MRR > 1 {
		t.Fatalf("average regret %v", res.MRR)
	}
	// The average-regret greedy should achieve average regret no
	// worse than (about) the max-regret greedy's average regret.
	geo, err := GeoGreedy(pts, 6)
	if err != nil {
		t.Fatal(err)
	}
	avgOfGeo, err := AverageRegretSampled(pts, geo.Indices, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MRR > avgOfGeo+0.02 {
		t.Fatalf("average greedy %v much worse than geo greedy's average %v", res.MRR, avgOfGeo)
	}
}

func TestAverageGreedyValidation(t *testing.T) {
	if _, err := AverageGreedy(nil, 3, 10, 1); err != ErrNoPoints {
		t.Fatalf("empty: %v", err)
	}
	if _, err := AverageGreedy([]geom.Vector{{1, 1}}, 0, 10, 1); err != ErrBadK {
		t.Fatalf("k=0: %v", err)
	}
	if _, err := AverageGreedy([]geom.Vector{{1, 1}}, 1, 0, 1); err == nil {
		t.Fatal("0 samples accepted")
	}
}

func TestAverageGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := antiCorrelated(rng, 50, 3)
	a, err := AverageGreedy(pts, 5, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AverageGreedy(pts, 5, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Indices) != len(b.Indices) {
		t.Fatal("non-deterministic size")
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatal("non-deterministic selection")
		}
	}
}
