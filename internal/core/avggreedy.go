package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// AverageGreedy selects at most k points minimizing the *average*
// regret ratio over linear utilities — the paper's first future
// direction (Section VIII). The average is estimated over `samples`
// utility functions drawn uniformly from the non-negative unit
// sphere, and the selection is built greedily: each step adds the
// point with the largest total utility gain across the samples.
// Because the objective Σ_ω max_{p∈S} ω·p is monotone submodular,
// the greedy enjoys the classic (1−1/e) approximation guarantee for
// the sampled objective.
//
// In the returned Result, MRR holds the *sampled average* regret
// ratio of the selection (not the maximum); evaluate with
// MRRGeometric for the worst case.
func AverageGreedy(pts []geom.Vector, k, samples int, seed int64) (*Result, error) {
	d, err := validatePoints(pts)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if samples < 1 {
		return nil, fmt.Errorf("core: samples must be positive, got %d", samples)
	}
	if k > len(pts) {
		k = len(pts)
	}

	rng := rand.New(rand.NewSource(seed))
	ws := make([]geom.Vector, samples)
	// utility[s][i] = ws[s]·pts[i], precomputed; best[s] and the
	// dataset-wide top value per sample drive the regret accounting.
	utility := make([][]float64, samples)
	top := make([]float64, samples)
	for s := range ws {
		ws[s] = randomUtility(rng, d)
		row := make([]float64, len(pts))
		t := math.Inf(-1)
		for i, p := range pts {
			row[i] = ws[s].Dot(p)
			if row[i] > t {
				t = row[i]
			}
		}
		utility[s] = row
		top[s] = t
	}

	taken := make([]bool, len(pts))
	best := make([]float64, samples) // current max utility of S per sample
	selected := make([]int, 0, k)
	for len(selected) < k {
		bestGain, bestIdx := 0.0, -1
		for i := range pts {
			if taken[i] {
				continue
			}
			var gain float64
			for s := range best {
				if u := utility[s][i]; u > best[s] {
					gain += u - best[s]
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 {
			break // no remaining point improves any sample
		}
		taken[bestIdx] = true
		selected = append(selected, bestIdx)
		for s := range best {
			if u := utility[s][bestIdx]; u > best[s] {
				best[s] = u
			}
		}
	}

	// Report the sampled average regret of the final selection.
	var avg float64
	for s := range best {
		if top[s] > 0 {
			r := 1 - best[s]/top[s]
			if r > 0 {
				avg += r
			}
		}
	}
	avg /= float64(samples)
	exhausted := -1
	if len(selected) < k {
		exhausted = len(selected)
	}
	return &Result{Indices: selected, MRR: avg, ExhaustedAt: exhausted}, nil
}
