package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dd"
	"repro/internal/geom"
)

// dualHull wraps the incremental halfspace intersection of package dd
// as the polar dual of the paper's orthotope convex hull Conv(S):
//
//	Q(S) = { ω ≥ 0 : ω·p ≤ 1 ∀p ∈ S } ,
//
// with the correspondence (DESIGN.md §1)
//
//	cr(q, S) = 1 / max_{v ∈ vertices(Q(S))} v·q .
//
// The polytope is seeded with the box 0 ≤ ω_i ≤ 1/maxDim_i, whose
// upper bounds are implied by the constraints of the per-dimension
// boundary points, so once those are inserted the vertex set is
// exactly vert(Q(S)).
type dualHull struct {
	poly *dd.Polytope
	dim  int
}

// newDualHull creates the dual for candidates whose per-dimension
// maxima are maxs (all must be positive).
func newDualHull(maxs []float64) (*dualHull, error) {
	upper := make([]float64, len(maxs))
	for i, m := range maxs {
		if !(m > 0) {
			return nil, fmt.Errorf("%w: dimension %d has non-positive maximum %g", ErrBadPoint, i, m)
		}
		upper[i] = 1 / m
	}
	poly, err := dd.NewBox(upper)
	if err != nil {
		return nil, fmt.Errorf("core: building dual hull: %w", err)
	}
	return &dualHull{poly: poly, dim: len(maxs)}, nil
}

// insert adds point p to the selection set S, i.e. halfspace ω·p ≤ 1
// to Q(S). The context bounds the double-description update.
func (h *dualHull) insert(ctx context.Context, p geom.Vector) (dd.AddResult, error) {
	res, err := h.poly.AddHalfspaceCtx(ctx, p, 1)
	if err != nil {
		return res, fmt.Errorf("core: inserting point into dual hull: %w", err)
	}
	return res, nil
}

// supportOf returns max_{v} v·q over current vertices and the argmax
// vertex; cr(q, S) = 1/support.
func (h *dualHull) supportOf(q geom.Vector) (float64, *dd.Vertex) {
	return h.poly.MaxDot(q)
}

// criticalRatio returns cr(q, S) per Definition 3 of the paper.
func (h *dualHull) criticalRatio(q geom.Vector) float64 {
	s, _ := h.poly.MaxDot(q)
	if s <= geom.Eps {
		// Q(S) contains a full-dimensional box, so the support of any
		// strictly positive q is strictly positive; a vanishing value
		// means q ≈ 0 and the ratio diverges (infinitely deep inside).
		return math.Inf(1)
	}
	return 1 / s
}

// numVertices reports the current dual vertex count (= number of
// non-origin faces of Conv(S), including those induced by the
// orthotope closure).
func (h *dualHull) numVertices() int { return h.poly.NumVertices() }
