package core

// This file pins the implementation to the worked examples in the
// paper itself: the car database of Tables I–II, the running example
// of Figures 1–6 (reconstructed coordinates with the same stated
// relationships), and the k < d discussion of Section VII.

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/skyline"
)

// carDB is Table I: (normalized MPG, normalized HP).
var carDB = []geom.Vector{
	{0.94, 0.80}, // p1 BMW M3 GTS
	{0.76, 0.93}, // p2 Chevrolet Camaro SS
	{0.67, 1.00}, // p3 Ford Shelby GT500
	{1.00, 0.72}, // p4 Nissan 370Z coupe
}

// TestTableIIUtilities reproduces every utility value of Table II.
func TestTableIIUtilities(t *testing.T) {
	fs := []geom.Vector{{0.3, 0.7}, {0.5, 0.5}, {0.7, 0.3}}
	want := [][]float64{
		{0.842, 0.870, 0.898},
		{0.879, 0.845, 0.811},
		{0.901, 0.835, 0.769},
		{0.804, 0.860, 0.916},
	}
	for i, p := range carDB {
		for j, f := range fs {
			got := f.Dot(p)
			if math.Abs(got-want[i][j]) > 5e-4 {
				t.Fatalf("utility p%d f%d = %v, want %v", i+1, j, got, want[i][j])
			}
		}
	}
}

// TestCarExampleMRR reproduces the example computation below Table II:
// S = {p2, p3} has mrr 0.115 over the discrete function class
// {f(0.3,0.7), f(0.5,0.5), f(0.7,0.3)}.
func TestCarExampleMRR(t *testing.T) {
	sel := []int{1, 2}
	fs := []geom.Vector{{0.3, 0.7}, {0.5, 0.5}, {0.7, 0.3}}
	want := []float64{0, 0.029, 0.115}
	worst := 0.0
	for i, f := range fs {
		r, err := RegretOf(carDB, sel, f)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-want[i]) > 2e-3 {
			t.Fatalf("rr(S, f%d) = %v, want %v", i, r, want[i])
		}
		worst = math.Max(worst, r)
	}
	if math.Abs(worst-0.115) > 2e-3 {
		t.Fatalf("mrr over discrete class = %v, want 0.115", worst)
	}
	// Over the full linear class the mrr can only be larger.
	full, err := MRRGeometric(carDB, sel)
	if err != nil {
		t.Fatal(err)
	}
	if full < worst-1e-9 {
		t.Fatalf("full-class mrr %v below discrete-class %v", full, worst)
	}
}

// runningExample reconstructs the paper's Figure 1 data: 7 points in
// 2-d where p6 is the first-dimension boundary point, p7 the second-
// dimension boundary point, all seven are skyline points, p2 is
// subjugated by p3 (the only non-happy point), and D_conv is
// {p1, p3, p5, p6, p7}: p4 is happy but not on the hull.
//
// The paper does not print coordinates; these satisfy every stated
// relationship, which the tests verify via the library itself.
var runningExample = []geom.Vector{
	{0.55, 0.90}, // p1: hull extreme (above the p7–p3 chord)
	{0.65, 0.72}, // p2: skyline but below both Y(p3) lines → subjugated
	{0.75, 0.70}, // p3: hull extreme
	{0.82, 0.55}, // p4: below the p3–p5 chord yet above a line of every
	//               Y(p): happy but not extreme
	{0.90, 0.45}, // p5: hull extreme
	{1.00, 0.10}, // p6: first-dimension boundary point
	{0.20, 1.00}, // p7: second-dimension boundary point
}

func TestRunningExampleSkyline(t *testing.T) {
	sky, err := skyline.Of(runningExample)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sky, []int{0, 1, 2, 3, 4, 5, 6}) {
		t.Fatalf("skyline = %v, want all 7 points", sky)
	}
}

func TestRunningExampleBoundary(t *testing.T) {
	b := BoundaryPoints(runningExample)
	if !reflect.DeepEqual(b, []int{5, 6}) {
		t.Fatalf("boundary points = %v, want [5 6] (p6, p7)", b)
	}
}

func TestRunningExampleHappy(t *testing.T) {
	hp, err := happy.Compute(runningExample)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 3, 4, 5, 6} // everyone but p2
	if !reflect.DeepEqual(hp, want) {
		t.Fatalf("happy = %v, want %v", hp, want)
	}
	// And specifically p3 subjugates p2 as in Figure 5.
	sub, err := happy.Subjugates(runningExample[2], runningExample[1])
	if err != nil {
		t.Fatal(err)
	}
	if !sub {
		t.Fatal("p3 must subjugate p2")
	}
}

func TestRunningExampleConv(t *testing.T) {
	conv, err := ConvexHullPoints(runningExample)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 4, 5, 6} // p1, p3, p5, p6, p7
	if !reflect.DeepEqual(conv, want) {
		t.Fatalf("conv = %v, want %v", conv, want)
	}
}

// TestRunningExampleLemma4: the strict inclusions of Lemma 4 hold:
// a happy point outside D_conv (p4) and a skyline point outside
// D_happy (p2) both exist.
func TestRunningExampleLemma4(t *testing.T) {
	hp, err := happy.Compute(runningExample)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := ConvexAmongHappy(runningExample, hp)
	if err != nil {
		t.Fatal(err)
	}
	sky, err := skyline.Of(runningExample)
	if err != nil {
		t.Fatal(err)
	}
	if len(conv) >= len(hp) {
		t.Fatalf("no happy-but-not-conv point: conv %v happy %v", conv, hp)
	}
	if len(hp) >= len(sky) {
		t.Fatalf("no skyline-but-not-happy point: happy %v sky %v", hp, sky)
	}
}

// TestSectionVIIUnbounded reproduces the k < d example of Section
// VII: four near-axis points in 4-d; any 3 of them leave regret ≈ 1.
func TestSectionVIIUnbounded(t *testing.T) {
	delta := 1e-3
	pts := []geom.Vector{
		{delta, delta, delta, 1},
		{delta, delta, 1, delta},
		{delta, 1, delta, delta},
		{1, delta, delta, delta},
	}
	// Every 3-subset has mrr ≈ 1 (the dropped axis direction).
	for drop := 0; drop < 4; drop++ {
		var sel []int
		for i := range pts {
			if i != drop {
				sel = append(sel, i)
			}
		}
		mrr, err := MRRGeometric(pts, sel)
		if err != nil {
			t.Fatal(err)
		}
		if mrr < 0.99 {
			t.Fatalf("drop %d: mrr = %v, want ≈ 1", drop, mrr)
		}
	}
	// With k = 4 = d the regret is zero.
	res, err := GeoGreedy(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MRR > 1e-9 {
		t.Fatalf("k=d regret = %v, want 0", res.MRR)
	}
}
