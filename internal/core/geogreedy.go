package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/assert"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// GeoGreedy runs Algorithm 1 of the paper on the candidate points:
// seed with the d dimension boundary points, then repeatedly insert
// the candidate with the smallest critical ratio for the current
// selection, stopping early once every remaining candidate has
// critical ratio ≥ 1 (regret zero). Critical ratios come from the
// incrementally maintained dual hull; per Section IV-A only the
// candidates whose cached face was destroyed by an insertion are
// re-located, and only against the faces the insertion created.
//
// Candidates should normally be the happy points (Lemma 2); running
// on the skyline or the raw dataset is allowed and reproduces the
// paper's D_sky experiments.
func GeoGreedy(pts []geom.Vector, k int) (*Result, error) {
	return geoGreedyTrace(context.Background(), pts, k, 1, nil)
}

// GeoGreedyCtx is GeoGreedy with cooperative cancellation: the
// context is checked once per greedy iteration, once per candidate
// re-scan batch, and inside every dual-hull insertion, so a deadline
// or cancel stops the algorithm within one batch even on pathological
// hulls. The returned error wraps ctx.Err() when canceled.
func GeoGreedyCtx(ctx context.Context, pts []geom.Vector, k int) (*Result, error) {
	return geoGreedyTrace(ctx, pts, k, 1, nil)
}

// GeoGreedyParCtx is GeoGreedyCtx with intra-query parallelism: the
// candidate support scans, re-location passes and argmax reductions
// fan out over up to `workers` goroutines (0 = the process default,
// 1 = the exact sequential path). The answer is byte-identical to the
// sequential one for every worker count — reductions break ties by
// lowest index and NaN supports surface as ErrDegenerate with the
// lowest poisoned candidate, exactly as the sequential scan reports
// them.
func GeoGreedyParCtx(ctx context.Context, pts []geom.Vector, k, workers int) (*Result, error) {
	return geoGreedyTrace(ctx, pts, k, workers, nil)
}

// GeoGreedyTrace is GeoGreedy plus a per-insertion callback: after
// every selection step the callback receives the selected index and
// the maximum regret ratio of the selection so far. StoredList uses
// it to materialize the full insertion order with prefix regrets.
func GeoGreedyTrace(pts []geom.Vector, k int, onSelect func(index int, mrrSoFar float64)) (*Result, error) {
	return geoGreedyTrace(context.Background(), pts, k, 1, onSelect)
}

// GeoGreedyTraceCtx is GeoGreedyTrace with cooperative cancellation
// (see GeoGreedyCtx).
func GeoGreedyTraceCtx(ctx context.Context, pts []geom.Vector, k int, onSelect func(index int, mrrSoFar float64)) (*Result, error) {
	return geoGreedyTrace(ctx, pts, k, 1, onSelect)
}

// GeoGreedyTraceParCtx is GeoGreedyTraceCtx with intra-query
// parallelism (see GeoGreedyParCtx). The callback itself is always
// invoked from the calling goroutine, in selection order.
func GeoGreedyTraceParCtx(ctx context.Context, pts []geom.Vector, k, workers int, onSelect func(index int, mrrSoFar float64)) (*Result, error) {
	return geoGreedyTrace(ctx, pts, k, workers, onSelect)
}

// scanBatch is the number of candidate-support computations between
// cancellation checks in the initial assignment pass.
const scanBatch = 4096

// Per-site parallel grains: the minimum chunk sizes handed to
// parallel.For/ArgMax, sized so chunk scheduling stays well under the
// per-item work. Vars, not consts: fault-injection builds shrink them
// (geogreedy_fault.go) so the worker fan-out path — and the fault
// sites inside it — is reachable from test-sized datasets.
var (
	// grainSupport covers the one-time assignment scan's dual-hull
	// support evaluations. The kernel is heavy per item (a dot
	// product per hull vertex per candidate), so chunks amortize
	// scheduling quickly; 16384 lets the paper-scale n=100k scan fan
	// out (the previous 65536 kept it inline — one of the two causes
	// of the sub-1.0x parallel speedups in BENCH_51b6548) while
	// test-sized sweeps still run inline below two grains.
	grainSupport = 16384
	// grainRelocate covers the per-iteration relocation pass. Most
	// iterations touch only the few candidates whose best face was
	// capped, so the per-item work is a cheap guard plus an
	// occasional small MaxDotCols; chunks below this size cost more
	// in scheduling than they save, and sweeps under two grains run
	// inline — which is what keeps the k-iteration loop from paying
	// goroutine latency k times on narrow machines.
	grainRelocate = 16384
	// grainReduce covers pure loads/compares over cached candidate
	// state (the argmax reductions); same inline reasoning as
	// grainRelocate.
	grainReduce = 16384
)

// candState caches, for one unselected candidate, the dual vertex
// currently maximizing v·q (the face its critical ray crosses) and
// the value there.
type candState struct {
	bestVal float64
	bestID  int
	taken   bool
}

func geoGreedyTrace(ctx context.Context, pts []geom.Vector, k, workers int, onSelect func(int, float64)) (*Result, error) {
	return greedyHullTrace(ctx, pts, k, workers, 1.0, nil, onSelect)
}

// greedyHullTrace is the shared greedy dual-hull loop behind GeoGreedy
// (stop = 1: select while some candidate is strictly outside the hull)
// and EpsKernel (stop = 1/(1−ε): select while some candidate's support
// exceeds the ε-kernel slack). extraSeeds, when non-nil, are inserted
// after the dimension boundary points and before the assignment scan,
// so the scan prices every candidate against the fully seeded hull.
func greedyHullTrace(ctx context.Context, pts []geom.Vector, k, workers int, stop float64, extraSeeds []int, onSelect func(int, float64)) (*Result, error) {
	if _, err := validatePoints(pts); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, ErrBadK
	}
	if k > len(pts) {
		k = len(pts)
	}

	hull, err := newDualHull(maxPerDim(pts))
	if err != nil {
		return nil, err
	}

	// Flat copy of the candidates: the support scans and re-location
	// passes below run as contiguous kernels over qm instead of
	// per-point Dot calls. The backing comes from the scratch pool —
	// at paper scale it is the single largest per-query allocation —
	// and is released on return; qm must not outlive this function.
	qbuf := floatScratch(len(pts) * len(pts[0]))
	defer putFloatScratch(qbuf)
	qm := mat.FromVectorsInto(pts, qbuf)

	selected := make([]int, 0, k)
	states := candStateScratch(len(pts))
	defer putCandStateScratch(states)

	// Seed: the per-dimension boundary points (at most d, fewer on
	// duplicates; truncated if k < d, in which case the regret is
	// unbounded per the paper's Section VII discussion but the
	// algorithm still returns its best effort).
	seeds := BoundaryPoints(pts)
	truncatedSeeds := len(seeds) > k
	if truncatedSeeds {
		seeds = seeds[:k]
	}
	for _, i := range seeds {
		if _, err := hull.insert(ctx, pts[i]); err != nil {
			return nil, err
		}
		states[i].taken = true
		selected = append(selected, i)
	}
	// Extra seeds (EpsKernel's direction-net supports) join the hull
	// before the assignment scan so every candidate is priced against
	// the fully seeded selection; duplicates of the boundary seeds are
	// skipped via the taken flags.
	for _, i := range extraSeeds {
		if i < 0 || i >= len(pts) {
			return nil, fmt.Errorf("%w: %d (n=%d)", ErrBadSubset, i, len(pts))
		}
		if states[i].taken || len(selected) >= k {
			continue
		}
		if _, err := hull.insert(ctx, pts[i]); err != nil {
			return nil, err
		}
		states[i].taken = true
		selected = append(selected, i)
	}

	// Initial face assignment for every remaining candidate. The hull
	// is read-only during the scan and each iteration writes only its
	// own states entry, so the chunks are independent. Each chunk hands
	// scanBatch-sized row ranges to the batched support kernel, then
	// distributes the values into the per-candidate state (the taken
	// few are computed and discarded — cheaper than breaking the batch).
	err = parallel.For(ctx, len(pts), workers, grainSupport, func(start, end int) error {
		vals := floatScratch(scanBatch)
		ids := intScratch(scanBatch)
		defer putFloatScratch(vals)
		defer putIntScratch(ids)
		for bs := start; bs < end; bs += scanBatch {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: GeoGreedy canceled during candidate assignment: %w", err)
			}
			be := bs + scanBatch
			if be > end {
				be = end
			}
			hull.poly.SupportsInto(qm, bs, be, vals[:be-bs], ids[:be-bs])
			for i := bs; i < be; i++ {
				if states[i].taken {
					continue
				}
				val := vals[i-bs]
				if fault.Enabled {
					val = fault.NaN(fault.SiteGeoGreedySupport, val)
				}
				states[i].bestVal, states[i].bestID = val, ids[i-bs]
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if onSelect != nil {
		mrr, err := currentMRR(ctx, states, workers)
		if err != nil {
			return nil, err
		}
		for _, i := range selected {
			onSelect(i, mrr)
		}
	}

	// Re-location scratch, reused across insertions: membership set of
	// the dual vertices each insertion destroyed, the cap vertex list,
	// and its transposed matrix.
	removed := make(map[int]bool)
	var capPts []geom.Vector
	var capIDs []int
	capT := new(mat.Transposed)

	exhausted := -1
	for len(selected) < k {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: GeoGreedy canceled after %d selections: %w", len(selected), err)
		}
		if fault.Enabled && fault.Active(fault.SiteGeoGreedyPanic) {
			panic("fault: injected geometry panic in GeoGreedy")
		}
		// Candidate with the smallest critical ratio = largest
		// support value. A NaN support means the hull arithmetic broke
		// down (it would silently lose the candidate: every comparison
		// against NaN is false) — surface it as a degeneracy instead.
		best, _, err := bestCandidate(ctx, states, workers, len(selected), stop)
		if err != nil {
			return nil, err
		}
		if best < 0 {
			// Every remaining candidate is inside the hull:
			// cr ≥ 1 ⟹ mrr = 0 (Algorithm 1, line 8).
			exhausted = len(selected)
			break
		}
		res, err := hull.insert(ctx, pts[best])
		if err != nil {
			return nil, err
		}
		states[best].taken = true
		selected = append(selected, best)

		// Incremental re-location: only candidates whose cached face
		// was removed rescan, and only over the faces of the new cap
		// (created vertices plus kept vertices on the new plane). The
		// removed set and the new faces are read-only during the pass;
		// each iteration writes only its own states entry.
		if len(res.RemovedIDs) > 0 {
			clear(removed)
			for _, id := range res.RemovedIDs {
				removed[id] = true
			}
			// The cap — created vertices then kept on-plane vertices, in
			// the same order the pre-kernel loops scanned them — as a
			// transposed matrix, so each re-located candidate is one
			// batched max-dot. The column-order first-max fold matches
			// the old Added-then-OnPlane sequential scan bit for bit.
			capPts, capIDs = capPts[:0], capIDs[:0]
			for _, v := range res.Added {
				capPts = append(capPts, v.Point)
				capIDs = append(capIDs, v.ID)
			}
			for _, v := range res.OnPlane {
				capPts = append(capPts, v.Point)
				capIDs = append(capIDs, v.ID)
			}
			capT.SetCols(qm.Dim(), capPts)
			err := parallel.For(ctx, len(states), workers, grainRelocate, func(start, end int) error {
				acc := floatScratch(len(capPts))
				defer putFloatScratch(acc)
				for i := start; i < end; i++ {
					st := &states[i]
					if st.taken || !removed[st.bestID] {
						continue
					}
					c, newVal := capT.MaxDotCols(qm.Row(i), acc)
					newID := -1
					if c >= 0 {
						newID = capIDs[c]
					}
					if fault.Enabled {
						newVal = fault.NaN(fault.SiteGeoGreedySupport, newVal)
					}
					st.bestVal, st.bestID = newVal, newID
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		if onSelect != nil {
			mrr, err := currentMRR(ctx, states, workers)
			if err != nil {
				return nil, err
			}
			onSelect(best, mrr)
		}
	}

	mrr, err := currentMRR(ctx, states, workers)
	if err != nil {
		return nil, err
	}
	if truncatedSeeds {
		// With k below the number of dimension boundary points, the
		// dual hull's box bounds (implied only by the full seed set)
		// clip Q(S), so cached supports underestimate the regret —
		// the paper's unbounded k < d regime (Section VII).
		// Re-evaluate exactly from the selection alone.
		exact, err := MRRGeometricParCtx(ctx, pts, selected, workers)
		if err != nil {
			return nil, err
		}
		mrr = exact
	}
	if math.IsNaN(mrr) || math.IsInf(mrr, 0) {
		return nil, fmt.Errorf("%w: GeoGreedy regret ratio is %g", ErrDegenerate, mrr)
	}
	if assert.Enabled {
		// Lemma 1: the maximum regret ratio of any non-empty
		// selection lies in [0, 1].
		assert.UnitRange("GeoGreedy mrr", mrr, geom.LooseEps)
		for i := range states {
			if !states[i].taken {
				assert.That(!math.IsNaN(states[i].bestVal),
					"cached support of candidate %d is NaN", i)
			}
		}
	}
	return &Result{
		Indices:     selected,
		MRR:         mrr,
		ExhaustedAt: exhausted,
	}, nil
}

// bestCandidate finds the unselected candidate with the largest
// cached support, provided it exceeds stop + eps (stop = 1 is
// GeoGreedy's "critical ratio below 1, i.e. still outside the hull";
// stop = 1/(1−ε) is EpsKernel's slack); otherwise (-1, 0, nil). Ties
// break to the lowest index and a NaN support anywhere is
// ErrDegenerate — both independent of the worker count.
func bestCandidate(ctx context.Context, states []candState, workers, nSel int, stop float64) (int, float64, error) {
	best, bestVal, err := parallel.ArgMax(ctx, len(states), workers, grainReduce, func(i int) (float64, bool) {
		return states[i].bestVal, !states[i].taken
	})
	if err != nil {
		var nanErr *parallel.NaNError
		if errors.As(err, &nanErr) {
			return -1, 0, fmt.Errorf("%w: candidate %d has NaN critical ratio after %d selections",
				ErrDegenerate, nanErr.Index, nSel)
		}
		return -1, 0, fmt.Errorf("core: GeoGreedy canceled after %d selections: %w", nSel, err)
	}
	if best < 0 || bestVal <= stop+geom.Eps {
		return -1, 0, nil
	}
	return best, bestVal, nil
}

// currentMRR computes 1 − min cr over unselected candidates from the
// cached support values (Lemma 1), clamped at zero. A NaN cached
// support is ErrDegenerate: the reduction would otherwise silently
// lose it (every ordered comparison against NaN is false) and report
// a regret that ignores the poisoned candidate — parallel and
// sequential paths surface the identical failure instead.
func currentMRR(ctx context.Context, states []candState, workers int) (float64, error) {
	_, maxVal, err := parallel.ArgMax(ctx, len(states), workers, grainReduce, func(i int) (float64, bool) {
		return states[i].bestVal, !states[i].taken
	})
	if err != nil {
		var nanErr *parallel.NaNError
		if errors.As(err, &nanErr) {
			return 0, fmt.Errorf("%w: candidate %d has NaN critical ratio in regret evaluation",
				ErrDegenerate, nanErr.Index)
		}
		return 0, fmt.Errorf("core: GeoGreedy canceled during regret evaluation: %w", err)
	}
	if maxVal <= 1 {
		return 0, nil
	}
	return 1 - 1/maxVal, nil
}
