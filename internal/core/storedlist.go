package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/geom"
)

// StoredList is the paper's materialization of GeoGreedy
// (Section IV-B): preprocessing runs GeoGreedy over the candidate set
// with k = |candidates| and stores the insertion order; a query for
// any k then returns the first min(k, len) entries in O(k), with the
// prefix regret already known.
//
// The zero value is not usable; construct with BuildStoredList.
type StoredList struct {
	order []int
	// mrrAt[i] is the maximum regret ratio of the prefix of length
	// i+1 (measured against the candidate set).
	mrrAt []float64
	dim   int
	nCand int
	// complete records whether the whole greedy order was
	// materialized (BuildStoredList) or only a prefix
	// (BuildStoredListUpTo); queries beyond an incomplete list are
	// rejected rather than silently under-answered.
	complete bool
}

// ErrBeyondList is returned by Query when k exceeds the materialized
// prefix of a partially built list.
var ErrBeyondList = errors.New("core: k beyond the materialized stored-list prefix")

// BuildStoredList runs the preprocessing phase over the candidates
// (normally the happy points). This is the expensive step — the
// paper's "total time" of StoredList is the largest of the three
// algorithms because of it — while Query is then near-free.
func BuildStoredList(pts []geom.Vector) (*StoredList, error) {
	return BuildStoredListCtx(context.Background(), pts)
}

// BuildStoredListCtx is BuildStoredList with cooperative cancellation
// (the preprocessing is one full GeoGreedy run; see GeoGreedyCtx for
// the check granularity).
func BuildStoredListCtx(ctx context.Context, pts []geom.Vector) (*StoredList, error) {
	return BuildStoredListParCtx(ctx, pts, 1)
}

// BuildStoredListParCtx is BuildStoredListCtx with intra-query
// parallelism (see BuildStoredListUpToParCtx).
func BuildStoredListParCtx(ctx context.Context, pts []geom.Vector, workers int) (*StoredList, error) {
	s, err := BuildStoredListUpToParCtx(ctx, pts, len(pts), workers)
	if err != nil {
		return nil, err
	}
	s.complete = true
	return s, nil
}

// BuildStoredListUpTo materializes only the first maxLen entries of
// the greedy order — enough to serve every query with k ≤ maxLen at
// a fraction of the full preprocessing cost. The returned list
// rejects larger ks with ErrBeyondList (unless the greedy exhausted
// the hull before maxLen, in which case the list is complete anyway).
func BuildStoredListUpTo(pts []geom.Vector, maxLen int) (*StoredList, error) {
	return BuildStoredListUpToCtx(context.Background(), pts, maxLen)
}

// BuildStoredListUpToCtx is BuildStoredListUpTo with cooperative
// cancellation.
func BuildStoredListUpToCtx(ctx context.Context, pts []geom.Vector, maxLen int) (*StoredList, error) {
	return BuildStoredListUpToParCtx(ctx, pts, maxLen, 1)
}

// BuildStoredListUpToParCtx is BuildStoredListUpToCtx with
// intra-query parallelism: the underlying GeoGreedy run and the
// seed-prefix regret fixups fan out over up to `workers` goroutines
// (0 = the process default, 1 = the exact sequential path). The
// materialized order and per-prefix regrets are byte-identical for
// every worker count.
func BuildStoredListUpToParCtx(ctx context.Context, pts []geom.Vector, maxLen, workers int) (*StoredList, error) {
	d, err := validatePoints(pts)
	if err != nil {
		return nil, err
	}
	if maxLen < 1 {
		return nil, ErrBadK
	}
	if maxLen > len(pts) {
		maxLen = len(pts)
	}
	s := &StoredList{dim: d, nCand: len(pts)}
	res, err := GeoGreedyTraceParCtx(ctx, pts, maxLen, workers, func(idx int, mrr float64) {
		s.order = append(s.order, idx)
		s.mrrAt = append(s.mrrAt, mrr)
	})
	if err != nil {
		return nil, err
	}
	// An early stop means the prefix already drives the regret to
	// zero: every possible k is served, so the list is complete even
	// when maxLen < |candidates|.
	s.complete = res.ExhaustedAt >= 0 || maxLen >= len(pts)
	// The trace reports the regret after the whole seed batch (the d
	// dimension boundary points) for each seed entry; queries with
	// k below the seed count answer with a shorter prefix, so fix
	// those entries up by exact evaluation (Lemma 1). This keeps
	// Query/MRRFor consistent with running GeoGreedy directly at the
	// same k.
	seedN := len(BoundaryPoints(pts))
	for i := 0; i < seedN-1 && i < len(s.order); i++ {
		mrr, err := MRRGeometricParCtx(ctx, pts, s.order[:i+1], workers)
		if err != nil {
			return nil, err
		}
		s.mrrAt[i] = mrr
	}
	return s, nil
}

// Len returns the materialized list length. It can be shorter than
// the candidate count: GeoGreedy stops once the regret reaches zero,
// and every further point would be redundant (the prefix already
// contains all hull extreme points).
func (s *StoredList) Len() int { return len(s.order) }

// Dim returns the dimensionality of the candidates the list was
// built from.
func (s *StoredList) Dim() int { return s.dim }

// Query answers a k-regret query from the materialized list: the
// first min(k, Len) indices. Equal to GeoGreedy's answer for the
// same candidates and k by construction. For partially built lists
// (BuildStoredListUpTo) a k beyond the materialized prefix returns
// ErrBeyondList.
func (s *StoredList) Query(k int) ([]int, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	if k > len(s.order) {
		if !s.complete {
			return nil, fmt.Errorf("%w: k=%d, materialized %d", ErrBeyondList, k, len(s.order))
		}
		k = len(s.order)
	}
	out := make([]int, k)
	copy(out, s.order[:k])
	return out, nil
}

// MRRFor returns the maximum regret ratio of the answer Query(k)
// without recomputation. For k beyond the list length the regret is
// the final one (zero when the list exhausted the hull).
func (s *StoredList) MRRFor(k int) (float64, error) {
	if k < 1 {
		return 0, ErrBadK
	}
	if len(s.mrrAt) == 0 {
		return 0, fmt.Errorf("core: empty stored list")
	}
	if k > len(s.mrrAt) {
		if !s.complete {
			return 0, fmt.Errorf("%w: k=%d, materialized %d", ErrBeyondList, k, len(s.mrrAt))
		}
		k = len(s.mrrAt)
	}
	return s.mrrAt[k-1], nil
}

// MinK returns the smallest k whose stored-list answer has maximum
// regret ratio at most eps — the "min-size" dual of the k-regret
// query (given a regret budget, how many tuples must be shown?).
// The per-prefix regrets are non-increasing, so a binary search over
// the materialized list answers in O(log n). If even the full list
// exceeds eps (possible only for partially materialized lists, or
// eps < 0), MinK returns 0 and false.
func (s *StoredList) MinK(eps float64) (int, bool) {
	if len(s.mrrAt) == 0 {
		return 0, false
	}
	lo, hi := 0, len(s.mrrAt)-1
	if s.mrrAt[hi] > eps {
		return 0, false
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if s.mrrAt[mid] <= eps {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo + 1, true
}
