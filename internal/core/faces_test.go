package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/hull2d"
)

func TestFacesOfSquare(t *testing.T) {
	// One point (1,1): Conv is the unit square; non-origin faces are
	// x ≤ 1 and y ≤ 1.
	pts := []geom.Vector{{1, 1}}
	faces, err := FacesOf(pts, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(faces) != 2 {
		t.Fatalf("%d faces, want 2: %v", len(faces), faces)
	}
	if !faces[0].Normal.Equal(geom.Vector{0, 1}, 1e-9) || !faces[1].Normal.Equal(geom.Vector{1, 0}, 1e-9) {
		t.Fatalf("faces %v", faces)
	}
}

// TestFacesSupportEverySelectedPoint: each selected point lies on at
// least one face and below none.
func TestFacesSupportSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		d := 2 + rng.Intn(3)
		pts := antiCorrelated(rng, 30, d)
		res, err := GeoGreedy(pts, d+2)
		if err != nil {
			t.Fatal(err)
		}
		faces, err := FacesOf(pts, res.Indices)
		if err != nil {
			t.Fatal(err)
		}
		if len(faces) == 0 {
			t.Fatal("no faces")
		}
		for _, si := range res.Indices {
			p := pts[si]
			onSome := false
			for _, f := range faces {
				v := f.Normal.Dot(p) - f.Offset
				if v > 1e-7 {
					t.Fatalf("selected point %v above face %v", p, f)
				}
				if math.Abs(v) <= 1e-7 {
					onSome = true
				}
			}
			// Greedy-selected points are hull extreme points of the
			// selection, hence on the boundary.
			if !onSome {
				t.Fatalf("selected point %v on no face", p)
			}
		}
		// Every dataset point's critical ratio is consistent with the
		// face-wise ray computation.
		for probe := 0; probe < 5; probe++ {
			q := pts[rng.Intn(len(pts))]
			cr, err := CriticalRatioOf(pts, res.Indices, q)
			if err != nil {
				t.Fatal(err)
			}
			// Direct ray computation over faces: the exit scale is
			// min over faces of Offset/(Normal·q).
			exit := math.Inf(1)
			for _, f := range faces {
				den := f.Normal.Dot(q)
				if den > 1e-12 {
					if s := f.Offset / den; s < exit {
						exit = s
					}
				}
			}
			if math.Abs(cr-exit) > 1e-6*(1+exit) {
				t.Fatalf("cr %v vs face-ray %v", cr, exit)
			}
		}
	}
}

// TestFacesMatch2DChain: in two dimensions the faces must reproduce
// the hull2d upper-right chain segments plus the two axis-touching
// faces.
func TestFacesMatch2DChain(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	pts := antiCorrelated(rng, 40, 2)
	// Select everything so Conv(S) = Conv(D).
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	faces, err := FacesOf(pts, all)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := hull2d.FromVectors(pts)
	if err != nil {
		t.Fatal(err)
	}
	chain := hull2d.UpperRightChain(p2)
	// Faces between consecutive chain points plus the two axis faces:
	// |chain| + 1 faces in total.
	want := len(chain) + 1
	if len(faces) != want {
		t.Fatalf("%d faces, want %d (chain %d)", len(faces), want, len(chain))
	}
}

func TestCriticalRatioOfValidation(t *testing.T) {
	pts := []geom.Vector{{1, 1}}
	if _, err := CriticalRatioOf(pts, []int{0}, geom.Vector{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := CriticalRatioOf(pts, []int{0}, geom.Vector{0, 1}); err == nil {
		t.Fatal("non-positive query accepted")
	}
	if _, err := CriticalRatioOf(pts, nil, geom.Vector{1, 1}); err == nil {
		t.Fatal("empty selection accepted")
	}
	// Interior, boundary, exterior classification.
	cr, err := CriticalRatioOf(pts, []int{0}, geom.Vector{0.5, 0.5})
	if err != nil || cr <= 1 {
		t.Fatalf("interior cr %v, %v", cr, err)
	}
	cr, err = CriticalRatioOf(pts, []int{0}, geom.Vector{1, 1})
	if err != nil || math.Abs(cr-1) > 1e-9 {
		t.Fatalf("boundary cr %v, %v", cr, err)
	}
}
