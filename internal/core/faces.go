package core

import (
	"context"
	"sort"

	"repro/internal/assert"
	"repro/internal/geom"
)

// Face is one face of the paper's convex hull Conv(S) (the hull of
// the orthotope closure of the selection) that does not pass through
// the origin, represented by its supporting hyperplane
// Normal·x = Offset with a non-negative normal.
type Face struct {
	Normal geom.Vector
	Offset float64
}

// FacesOf returns every non-origin face of Conv(S) for the selection
// sel over pts, sorted lexicographically by normal for determinism.
//
// The faces are read off the dual polytope Q(S): each dual vertex v
// is a face with hyperplane v·x = 1 (DESIGN.md §1). Faces induced by
// the orthotope closure (hyperplanes touching the coordinate
// boundaries) are included — they are exactly the dual vertices that
// are tight on box constraints. The origin dual vertex (ω = 0, which
// would be the "hyperplane at infinity") is skipped.
//
// This accessor exists for inspection, visualization and testing; the
// query algorithms use the dual directly.
func FacesOf(pts []geom.Vector, sel []int) ([]Face, error) {
	return FacesOfCtx(context.Background(), pts, sel)
}

// FacesOfCtx is FacesOf with cooperative cancellation: the context is
// checked inside every dual-hull insertion. The returned error wraps
// ctx.Err() when canceled.
func FacesOfCtx(ctx context.Context, pts []geom.Vector, sel []int) ([]Face, error) {
	if _, err := validatePoints(pts); err != nil {
		return nil, err
	}
	if err := checkSelection(pts, sel); err != nil {
		return nil, err
	}
	selPts := make([]geom.Vector, len(sel))
	for i, s := range sel {
		selPts[i] = pts[s]
	}
	hull, err := newDualHull(maxPerDim(selPts))
	if err != nil {
		return nil, err
	}
	for _, p := range selPts {
		if _, err := hull.insert(ctx, p); err != nil {
			return nil, err
		}
	}
	var faces []Face
	for _, v := range hull.poly.Vertices() {
		if v.Point.Norm() < geom.Eps {
			continue // origin: no face
		}
		faces = append(faces, Face{Normal: v.Point.Clone(), Offset: 1})
	}
	sort.Slice(faces, func(a, b int) bool {
		na, nb := faces[a].Normal, faces[b].Normal
		for j := range na {
			// Exact ordered comparisons keep the order transitive;
			// an epsilon here would make sorting unstable.
			if na[j] < nb[j] {
				return true
			}
			if na[j] > nb[j] {
				return false
			}
		}
		return false
	})
	if assert.Enabled {
		normals := make([]geom.Vector, len(faces))
		offsets := make([]float64, len(faces))
		for i, f := range faces {
			normals[i], offsets[i] = f.Normal, f.Offset
		}
		assert.DownwardClosed(normals, offsets, selPts, geom.LooseEps)
	}
	return faces, nil
}

// CriticalRatioOf computes cr(q, S) (Definition 3) for an arbitrary
// query point against a selection: the fraction of the way from the
// origin to the boundary of Conv(S) at which q sits (< 1 outside,
// 1 on the boundary, > 1 inside).
func CriticalRatioOf(pts []geom.Vector, sel []int, q geom.Vector) (float64, error) {
	return CriticalRatioOfCtx(context.Background(), pts, sel, q)
}

// CriticalRatioOfCtx is CriticalRatioOf with cooperative cancellation
// (see FacesOfCtx for the check granularity).
func CriticalRatioOfCtx(ctx context.Context, pts []geom.Vector, sel []int, q geom.Vector) (float64, error) {
	if _, err := validatePoints(pts); err != nil {
		return 0, err
	}
	if err := checkSelection(pts, sel); err != nil {
		return 0, err
	}
	if err := geom.CheckSameDim(pts[0], q); err != nil {
		return 0, err
	}
	if !q.IsFinite() || !q.AllPositive() {
		return 0, ErrBadPoint
	}
	selPts := make([]geom.Vector, len(sel))
	for i, s := range sel {
		selPts[i] = pts[s]
	}
	hull, err := newDualHull(maxPerDim(selPts))
	if err != nil {
		return 0, err
	}
	for _, p := range selPts {
		if _, err := hull.insert(ctx, p); err != nil {
			return 0, err
		}
	}
	cr := hull.criticalRatio(q)
	if assert.Enabled {
		assert.CriticalRatio(cr, geom.Eps)
	}
	return cr, nil
}
