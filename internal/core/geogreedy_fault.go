//go:build kregretfault

package core

// Fault-injection builds exist to exercise the parallel worker path —
// SiteParallelWorker fires inside spawned workers, and a sweep that
// runs inline (n < 2·grain) never reaches it. The production grains
// are sized for six-figure datasets, which would force every fault
// test to build one; shrinking them here keeps the fan-out threshold
// at the seed values the fault suites were sized against (a few
// thousand points split every solver stage into multiple chunks).
func init() {
	grainSupport = 256
	grainRelocate = 256
	grainReduce = 1024
}
