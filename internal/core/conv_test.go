package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/hull2d"
	"repro/internal/skyline"
)

func TestConvexHullPointsSmall(t *testing.T) {
	pts := []geom.Vector{
		{1.00, 0.10}, // 0: extreme (max dim 1)
		{0.10, 1.00}, // 1: extreme (max dim 2)
		{0.70, 0.70}, // 2: extreme (above the 0–1 chord)
		{0.52, 0.52}, // 3: inside the hull
		{0.30, 0.30}, // 4: dominated
	}
	got, err := ConvexHullPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("ConvexHullPoints = %v, want [0 1 2]", got)
	}
}

func TestConvexHullPointsOnFaceNotVertex(t *testing.T) {
	// Point 2 lies exactly on the segment between 0 and 1 — on a
	// face but not an extreme point.
	pts := []geom.Vector{
		{1.00, 0.20},
		{0.20, 1.00},
		{0.60, 0.60},
	}
	got, err := ConvexHullPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("ConvexHullPoints = %v, want [0 1]", got)
	}
}

func TestConvexHullPointsDuplicates(t *testing.T) {
	// Exact duplicates of an extreme point: both reported.
	pts := []geom.Vector{
		{1.00, 0.20},
		{1.00, 0.20},
		{0.20, 1.00},
	}
	got, err := ConvexHullPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("ConvexHullPoints with duplicates = %v", got)
	}
}

// TestLemma3Relationship: D_conv ⊆ D_happy ⊆ D_sky on random data.
func TestLemma3Relationship(t *testing.T) {
	rng := rand.New(rand.NewSource(1403))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(4)
		n := 30 + rng.Intn(120)
		pts := antiCorrelated(rng, n, d)
		sky, err := skyline.Of(pts)
		if err != nil {
			t.Fatal(err)
		}
		hp := happy.ComputeAmongSkyline(pts, sky)
		conv, err := ConvexAmongHappy(pts, hp)
		if err != nil {
			t.Fatal(err)
		}
		inSky := toSet(sky)
		inHappy := toSet(hp)
		for _, i := range hp {
			if !inSky[i] {
				t.Fatalf("trial %d: happy %d ∉ sky", trial, i)
			}
		}
		for _, i := range conv {
			if !inHappy[i] {
				t.Fatalf("trial %d: conv %d ∉ happy", trial, i)
			}
		}
		if len(conv) > len(hp) || len(hp) > len(sky) {
			t.Fatalf("trial %d: sizes %d/%d/%d violate Lemma 3", trial, len(conv), len(hp), len(sky))
		}
	}
}

// TestConvMatches2DHull: in two dimensions the extreme points must be
// exactly the upper-right chain of the planar orthotope hull.
func TestConvMatches2DHull(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(60)
		pts := antiCorrelated(rng, n, 2)
		conv, err := ConvexHullPoints(pts)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := hull2d.FromVectors(pts)
		if err != nil {
			t.Fatal(err)
		}
		chain := hull2d.UpperRightChain(p2)
		// Match chain points back to indices (coordinates are
		// continuous so exact-match is safe; duplicates would match
		// multiple indices, handled by comparing multisets of
		// coordinates instead).
		if len(chain) != len(conv) {
			t.Fatalf("trial %d: conv size %d vs 2-d chain size %d\nconv=%v\nchain=%v",
				trial, len(conv), len(chain), conv, chain)
		}
		for _, ci := range conv {
			found := false
			for _, cp := range chain {
				if math.Abs(cp.X-pts[ci][0]) < 1e-12 && math.Abs(cp.Y-pts[ci][1]) < 1e-12 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: conv point %d (%v) not on 2-d chain", trial, ci, pts[ci])
			}
		}
	}
}

// TestGeoGreedyPrefixContainsConvEventually: the stored list run to
// exhaustion selects exactly a superset of nothing less than D_conv
// (every extreme point must eventually be selected to reach regret
// zero), and only hull points are ever selected after the seeds.
func TestStoredListExhaustsHull(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := antiCorrelated(rng, 40, 3)
	list, err := BuildStoredList(pts)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := ConvexHullPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	full, err := list.Query(list.Len())
	if err != nil {
		t.Fatal(err)
	}
	selected := toSet(full)
	for _, c := range conv {
		if !selected[c] {
			t.Fatalf("extreme point %d never selected; list %v", c, full)
		}
	}
}

func toSet(xs []int) map[int]bool {
	m := make(map[int]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func TestConvexAmongHappyValidation(t *testing.T) {
	pts := []geom.Vector{{1, 1}}
	if _, err := ConvexAmongHappy(pts, []int{3}); err == nil {
		t.Fatal("out-of-range happy index accepted")
	}
	got, err := ConvexAmongHappy(pts, nil)
	if err != nil || got != nil {
		t.Fatalf("empty candidates: %v, %v", got, err)
	}
}
