package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At broken")
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases")
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatal("wrong content")
	}
	if _, err := NewMatrixFromRows([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("expected ragged-row error")
	}
}

func TestMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 2)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	y, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSolveSimple(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("got %v, want ErrSingular", err)
	}
}

func TestSolveNonSquare(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestDet(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	d, err := Det(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-(-2)) > 1e-12 {
		t.Fatalf("Det = %v, want -2", d)
	}
	s, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	d, err = Det(s)
	if err != nil || d != 0 {
		t.Fatalf("singular Det = (%v, %v), want (0, nil)", d, err)
	}
	if d, _ := Det(Identity(5)); math.Abs(d-1) > 1e-12 {
		t.Fatalf("det(I) = %v", d)
	}
}

func TestInverse(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-12 {
				t.Fatalf("A·A⁻¹[%d][%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestRank(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}})
	if r := Rank(a, 1e-9); r != 2 {
		t.Fatalf("Rank = %d, want 2", r)
	}
	if r := Rank(Identity(4), 1e-9); r != 4 {
		t.Fatalf("Rank(I4) = %d", r)
	}
	if r := Rank(NewMatrix(3, 3), 1e-9); r != 0 {
		t.Fatalf("Rank(0) = %d", r)
	}
	// Rectangular.
	b, _ := NewMatrixFromRows([][]float64{{1, 0, 0}, {0, 1, 0}})
	if r := Rank(b, 1e-9); r != 2 {
		t.Fatalf("Rank(rect) = %d", r)
	}
}

// TestSolveRandomRoundTrip: A·x = b ⟹ Solve(A, b) ≈ x for random
// well-conditioned systems.
func TestSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal boost for conditioning.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b, _ := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], x[i])
			}
		}
	}
}

// Determinant is multiplicative: det(AB) = det(A)·det(B).
func TestDetMultiplicativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		a, b := NewMatrix(n, n), NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		ab, _ := a.Mul(b)
		da, _ := Det(a)
		db, _ := Det(b)
		dab, _ := Det(ab)
		return math.Abs(dab-da*db) <= 1e-6*(1+math.Abs(dab))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
