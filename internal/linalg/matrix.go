// Package linalg implements the small dense linear algebra kernel the
// geometry layers need: LU decomposition with partial pivoting,
// linear-system solving, determinants and inverses. Matrices here are
// tiny (d×d with d ≤ ~10 for hyperplane fitting and dual-vertex
// computation), so the implementation favours clarity and numerical
// robustness over blocking or vectorization.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a matrix is singular to working
// precision.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrShape is returned for dimension mismatches.
var ErrShape = errors.New("linalg: shape mismatch")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFromRows builds a matrix from row slices, which must all
// have equal length.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrShape, i, len(row), c)
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: %dx%d times %dx%d", ErrShape, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k, mik := range mi {
			bk := b.Row(k)
			for j := range oi {
				oi[j] += mik * bk[j]
			}
		}
	}
	return out, nil
}

// MulVec returns m·x as a new slice.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d times vector of length %d", ErrShape, m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		for j, v := range m.Row(i) {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// String renders the matrix row per line, for debugging and tests.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%v", m.Row(i))
	}
	return b.String()
}

// IsFinite reports whether every entry is finite.
func (m *Matrix) IsFinite() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
