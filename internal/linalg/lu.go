package linalg

import (
	"fmt"
	"math"
)

// LU holds an LU decomposition with partial pivoting: P·A = L·U,
// stored compactly (L's unit diagonal implicit).
type LU struct {
	lu    *Matrix
	pivot []int
	sign  int // +1 or −1 from row swaps; 0 if singular
	n     int
}

// singularTol is the pivot magnitude below which the factorization
// declares the matrix singular. Inputs in this library are O(1)
// (coordinates in (0,1]), so an absolute threshold works.
const singularTol = 1e-12

// Factor computes the LU decomposition of the square matrix a.
// The input is not modified.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: LU of %dx%d matrix", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1
	for i := range pivot {
		pivot[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivoting: largest magnitude in the column.
		p, best := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if best < singularTol {
			return &LU{lu: lu, pivot: pivot, sign: 0, n: n}, ErrSingular
		}
		if p != col {
			swapRows(lu, p, col)
			pivot[p], pivot[col] = pivot[col], pivot[p]
			sign = -sign
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			lu.Set(r, col, f)
			for c := col + 1; c < n; c++ {
				lu.Set(r, c, lu.At(r, c)-f*lu.At(col, c))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign, n: n}, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	if f.sign == 0 {
		return 0
	}
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A·x = b for one right-hand side.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if f.sign == 0 {
		return nil, ErrSingular
	}
	if len(b) != f.n {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), f.n)
	}
	x := make([]float64, f.n)
	// Apply permutation.
	for i, p := range f.pivot {
		x[i] = b[p]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < f.n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := f.n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < f.n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x, nil
}

// Solve is a convenience wrapper: factor a and solve a·x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Det returns det(a) for a square matrix, 0 when singular.
func Det(a *Matrix) (float64, error) {
	f, err := Factor(a)
	if err == ErrSingular {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return f.Det(), nil
}

// Inverse returns a⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for c := 0; c < n; c++ {
		for i := range e {
			e[i] = 0
		}
		e[c] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for r := 0; r < n; r++ {
			inv.Set(r, c, col[r])
		}
	}
	return inv, nil
}

// Rank estimates the numerical rank of a (possibly rectangular)
// matrix by Gaussian elimination with full row pivoting and the given
// tolerance.
func Rank(a *Matrix, tol float64) int {
	m := a.Clone()
	rank := 0
	rows, cols := m.Rows, m.Cols
	for col := 0; col < cols && rank < rows; col++ {
		// Find pivot row at or below rank.
		p, best := -1, tol
		for r := rank; r < rows; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if p < 0 {
			continue
		}
		if p != rank {
			swapRows(m, p, rank)
		}
		inv := 1 / m.At(rank, col)
		for r := 0; r < rows; r++ {
			if r == rank {
				continue
			}
			f := m.At(r, col) * inv
			for c := col; c < cols; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(rank, c))
			}
		}
		rank++
	}
	return rank
}
