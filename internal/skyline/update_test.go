package skyline

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestUpdateInsertDeleteDifferential drives long randomized
// insert/delete sequences and asserts after EVERY mutation that the
// incrementally patched skyline equals a from-scratch recompute —
// exact slice equality, not set equality, since both sides are
// ascending original indices.
func TestUpdateInsertDeleteDifferential(t *testing.T) {
	for _, g := range kernelGens {
		for d := 2; d <= 6; d++ {
			pool, err := g.fn(400, d, int64(d*7+len(g.name)))
			if err != nil {
				t.Fatal(err)
			}
			pts := append([]geom.Vector(nil), pool[:80]...)
			pool = pool[80:]
			sky := brute(pts)
			rng := rand.New(rand.NewSource(int64(d)))
			for step := 0; step < 200; step++ {
				if len(pool) > 0 && (len(pts) < 20 || rng.Intn(2) == 0) {
					pts = append(pts, pool[0])
					pool = pool[1:]
					newSky, removed, inserted, err := UpdateInsert(pts, sky)
					if err != nil {
						t.Fatal(err)
					}
					if !inserted {
						// Fast path contract: the cached slice is shared.
						if len(sky) > 0 && &newSky[0] != &sky[0] {
							t.Fatalf("%s d=%d step %d: no-op insert copied the skyline", g.name, d, step)
						}
						if removed != nil {
							t.Fatalf("%s d=%d step %d: no-op insert evicted %v", g.name, d, step, removed)
						}
					}
					for _, r := range removed {
						if !geom.Dominates(pts[len(pts)-1], pts[r]) {
							t.Fatalf("%s d=%d step %d: evicted %d is not dominated by the insert", g.name, d, step, r)
						}
					}
					sky = newSky
				} else {
					delIdx := rng.Intn(len(pts))
					newSky, entrants, wasSky, err := UpdateDelete(pts, sky, delIdx)
					if err != nil {
						t.Fatal(err)
					}
					wasMember := false
					for _, s := range sky {
						if s == delIdx {
							wasMember = true
						}
					}
					if wasSky != wasMember {
						t.Fatalf("%s d=%d step %d: wasSky=%v, membership=%v", g.name, d, step, wasSky, wasMember)
					}
					if !wasSky && entrants != nil {
						t.Fatalf("%s d=%d step %d: entrants %v from a non-skyline delete", g.name, d, step, entrants)
					}
					pts = append(pts[:delIdx], pts[delIdx+1:]...)
					sky = newSky
				}
				want := brute(pts)
				equalInts(t, g.name, sky, want)
			}
		}
	}
}

// TestUpdateInsertErrors: invalid cached state must error, not
// silently corrupt.
func TestUpdateInsertErrors(t *testing.T) {
	if _, _, _, err := UpdateInsert(nil, nil); err == nil {
		t.Fatal("empty point set accepted")
	}
	pts := []geom.Vector{{0.5, 0.5}, {0.6, 0.6}}
	for _, bad := range [][]int{{1}, {-1}, {2}} {
		if _, _, _, err := UpdateInsert(pts, bad); err == nil {
			t.Fatalf("cached skyline %v accepted for insert at index 1", bad)
		}
	}
}

// TestUpdateDeleteErrors: out-of-range indices are rejected.
func TestUpdateDeleteErrors(t *testing.T) {
	pts := []geom.Vector{{0.5, 0.5}}
	for _, bad := range []int{-1, 1} {
		if _, _, _, err := UpdateDelete(pts, []int{0}, bad); err == nil {
			t.Fatalf("delete index %d accepted (n=1)", bad)
		}
	}
	if _, _, _, err := UpdateDelete(pts, []int{3}, 0); err == nil {
		t.Fatal("cached skyline index 3 accepted (n=1)")
	}
}

// TestUpdateDeleteChainedEntrants pins the mini-skyline among freed
// candidates: delIdx ≻ x ≻ y means deleting delIdx frees x but NOT y.
func TestUpdateDeleteChainedEntrants(t *testing.T) {
	pts := []geom.Vector{
		{0.9, 0.9}, // 0: skyline, to be deleted
		{0.8, 0.8}, // 1: freed by the delete
		{0.7, 0.7}, // 2: still dominated by 1 after the delete
		{0.1, 0.95},
	}
	sky, entrants, wasSky, err := UpdateDelete(pts, brute(pts), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !wasSky {
		t.Fatal("deleted point was skyline")
	}
	equalInts(t, "entrants", entrants, []int{0}) // old index 1, shifted down
	equalInts(t, "sky", sky, []int{0, 2})
}
