// Package skyline computes the skyline (Pareto frontier, maxima) of a
// point set: the points not dominated by any other point, where p
// dominates q when p ≥ q on every dimension and p > q on at least
// one.
//
// The skyline is the candidate set used by all k-regret work prior to
// the paper (Nanongkai et al. run Greedy over D_sky); the paper's
// happy points are a subset of it (Lemma 3), and Table III /
// Figures 8 and 10 compare candidate sets directly, so the repository
// needs real skyline operators, not a stub. Three classic algorithms
// are provided:
//
//   - BNL — block-nested-loop (Börzsönyi, Kossmann, Stocker, ICDE'01);
//     simple, no preprocessing, O(n²) worst case.
//   - SFS — sort-filter-skyline (Chomicki et al.): presort by a
//     monotone score so every kept point is final; usually far fewer
//     dominance tests than BNL.
//   - DC — divide & conquer on the first dimension with pairwise
//     merge, the theoretically better variant from the original
//     skyline paper.
//
// All three return indices into the input slice, sorted ascending, and
// agree exactly (property-tested).
package skyline

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/mat"
)

// Algorithm selects a skyline implementation.
type Algorithm int

// Available algorithms.
const (
	BNL Algorithm = iota
	SFS
	DC
	// Kernel is the blocked two-tier window over packed rows
	// (kernel.go) — the default behind Of and ComputeParallel.
	Kernel
)

func (a Algorithm) String() string {
	switch a {
	case BNL:
		return "BNL"
	case SFS:
		return "SFS"
	case DC:
		return "DC"
	case Kernel:
		return "Kernel"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ErrBadInput flags dimension mismatches or non-finite coordinates.
var ErrBadInput = errors.New("skyline: bad input")

// validate checks dimensional consistency and finiteness.
func validate(pts []geom.Vector) error {
	if len(pts) == 0 {
		return nil
	}
	d := len(pts[0])
	for i, p := range pts {
		if len(p) != d {
			return fmt.Errorf("%w: point %d has dimension %d, want %d", ErrBadInput, i, len(p), d)
		}
		if !p.IsFinite() {
			return fmt.Errorf("%w: point %d has non-finite coordinates", ErrBadInput, i)
		}
	}
	return nil
}

// Compute returns the indices of the skyline points of pts using the
// requested algorithm. Indices are sorted ascending. Duplicate points
// are all retained (none dominates its copies).
func Compute(pts []geom.Vector, algo Algorithm) ([]int, error) {
	if err := validate(pts); err != nil {
		return nil, err
	}
	switch algo {
	case BNL:
		return bnl(pts), nil
	case SFS:
		return sfs(pts), nil
	case DC:
		return dc(pts), nil
	case Kernel:
		return computeKernel(pts)
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %d", ErrBadInput, int(algo))
	}
}

// Of is shorthand for Compute with Kernel, the fastest variant here.
func Of(pts []geom.Vector) ([]int, error) { return Compute(pts, Kernel) }

// bnl is the block-nested-loop algorithm with an in-memory window of
// mutually non-dominating points. Because the window is an antichain
// and dominance is transitive, a point dominated by a window entry
// cannot itself dominate any window entry, so the two checks can run
// in one pass.
func bnl(pts []geom.Vector) []int {
	window := make([]int, 0, 64)
	keep := make([]int, 0, 64)
	for i, p := range pts {
		dominated := false
		keep = keep[:0]
		for _, wi := range window {
			w := pts[wi]
			if geom.Dominates(w, p) {
				dominated = true
				break
			}
			if !geom.Dominates(p, w) {
				keep = append(keep, wi)
			}
		}
		if dominated {
			continue // window unchanged: p dominated nothing (see above)
		}
		window, keep = append(keep, i), window[:0]
	}
	sort.Ints(window)
	return window
}

// sfs presorts by descending coordinate sum (a monotone scoring
// function), which guarantees no later point can dominate an earlier
// one; every window entry is final and the window only grows.
func sfs(pts []geom.Vector) []int {
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sums := make([]float64, len(pts))
	for i, p := range pts {
		sums[i] = p.Sum()
	}
	sort.Slice(order, func(a, b int) bool {
		// Exact ordered comparisons keep the order transitive.
		sa, sb := sums[order[a]], sums[order[b]]
		if sa > sb {
			return true
		}
		if sa < sb {
			return false
		}
		return order[a] < order[b]
	})
	var sky []int
	for _, i := range order {
		p := pts[i]
		dominated := false
		for _, si := range sky {
			if geom.Dominates(pts[si], p) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, i)
		}
	}
	sort.Ints(sky)
	return sky
}

// dc is divide & conquer: split on the median of the first dimension,
// solve recursively, then filter the low half against the high half.
func dc(pts []geom.Vector) []int {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	out := dcRec(pts, idx)
	sort.Ints(out)
	return out
}

func dcRec(pts []geom.Vector, idx []int) []int {
	if len(idx) <= 16 {
		return bruteForce(pts, idx)
	}
	// Median split on dimension 0 (ties broken by index for a
	// deterministic balanced partition).
	sorted := append([]int(nil), idx...)
	sort.Slice(sorted, func(a, b int) bool {
		// Exact ordered comparisons keep the order transitive.
		pa, pb := pts[sorted[a]][0], pts[sorted[b]][0]
		if pa < pb {
			return true
		}
		if pa > pb {
			return false
		}
		return sorted[a] < sorted[b]
	})
	mid := len(sorted) / 2
	low, high := sorted[:mid], sorted[mid:]
	skyLow := dcRec(pts, low)
	skyHigh := dcRec(pts, high)
	// Cross-filter both halves. Filtering high against low is also
	// required: the index tie-break can place points with equal
	// first-dimension values on both sides of the split, and such a
	// low point can dominate a high point. Each side is filtered
	// against the other's unfiltered skyline (valid by transitivity,
	// and no point can be dropped from both sides because each
	// skyline is an antichain). Dominance runs through the matrix
	// kernel's row form — decision-identical to geom.Dominates, with
	// the branch-free d=4 fast path.
	merged := make([]int, 0, len(skyLow)+len(skyHigh))
	for _, hi := range skyHigh {
		dominated := false
		for _, li := range skyLow {
			if mat.DominatesRows(pts[li], pts[hi]) {
				dominated = true
				break
			}
		}
		if !dominated {
			merged = append(merged, hi)
		}
	}
	for _, li := range skyLow {
		dominated := false
		for _, hi := range skyHigh {
			if mat.DominatesRows(pts[hi], pts[li]) {
				dominated = true
				break
			}
		}
		if !dominated {
			merged = append(merged, li)
		}
	}
	return merged
}

// bruteForce is the O(m²) base case over a subset of indices.
func bruteForce(pts []geom.Vector, idx []int) []int {
	var out []int
	for _, i := range idx {
		dominated := false
		for _, j := range idx {
			if i != j && geom.Dominates(pts[j], pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// IsSkylinePoint reports whether pts[i] is dominated by no other
// point — an O(n) check used by tests and by callers that need to
// verify a single tuple.
func IsSkylinePoint(pts []geom.Vector, i int) bool {
	for j, q := range pts {
		if j != i && geom.Dominates(q, pts[i]) {
			return false
		}
	}
	return true
}
