package skyline

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/geom"
)

// ComputeParallel computes the skyline with the divide & conquer
// algorithm, running the two recursive halves concurrently down to a
// depth that saturates `workers` goroutines (0 means GOMAXPROCS).
// Output is identical to Compute with DC.
func ComputeParallel(pts []geom.Vector, workers int) ([]int, error) {
	if err := validate(pts); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := 0
	for 1<<depth < workers {
		depth++
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	out := dcParallel(pts, idx, depth)
	sort.Ints(out)
	return out, nil
}

// dcParallel mirrors dcRec, spawning goroutines for the first
// `depth` split levels.
func dcParallel(pts []geom.Vector, idx []int, depth int) []int {
	if depth <= 0 || len(idx) <= 2048 {
		return dcRec(pts, idx)
	}
	sorted := append([]int(nil), idx...)
	sort.Slice(sorted, func(a, b int) bool {
		// Exact ordered comparisons keep the order transitive.
		pa, pb := pts[sorted[a]][0], pts[sorted[b]][0]
		if pa < pb {
			return true
		}
		if pa > pb {
			return false
		}
		return sorted[a] < sorted[b]
	})
	mid := len(sorted) / 2
	low, high := sorted[:mid], sorted[mid:]
	var skyLow, skyHigh []int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		skyLow = dcParallel(pts, low, depth-1)
	}()
	skyHigh = dcParallel(pts, high, depth-1)
	wg.Wait()
	// Same two-way cross-filter as the sequential merge (see dcRec
	// for why high-vs-low is required under first-dimension ties).
	merged := make([]int, 0, len(skyLow)+len(skyHigh))
	for _, hi := range skyHigh {
		dominated := false
		for _, li := range skyLow {
			if geom.Dominates(pts[li], pts[hi]) {
				dominated = true
				break
			}
		}
		if !dominated {
			merged = append(merged, hi)
		}
	}
	for _, li := range skyLow {
		dominated := false
		for _, hi := range skyHigh {
			if geom.Dominates(pts[hi], pts[li]) {
				dominated = true
				break
			}
		}
		if !dominated {
			merged = append(merged, li)
		}
	}
	return merged
}
