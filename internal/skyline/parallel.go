package skyline

import (
	"context"
	"sort"
	"sync"

	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// mergeParGrain is the minimum chunk of candidates per fan-out unit
// in the cross-filter merge; each candidate costs a dominance scan
// over the opposite half's skyline.
const mergeParGrain = 64

// mergeParThreshold is the candidate count below which the
// cross-filter stays sequential.
const mergeParThreshold = 2048

// ComputeParallel computes the skyline with the blocked kernel,
// striping the points across `workers` goroutines (0 means the
// process default) and merging with one more kernel pass over the
// union of stripe skylines. Output is identical to Of on every input
// — the kernel is exact and order-independent, so the stripe
// decomposition changes only wall-clock.
func ComputeParallel(pts []geom.Vector, workers int) ([]int, error) {
	return ComputeParallelCtx(context.Background(), pts, workers)
}

// ComputeParallelCtx is ComputeParallel with the caller's context
// plumbed into the stripe fan-out. Each stripe is pure compute, so
// cancellation is observed at stripe granularity; the result is
// identical to the sequential skyline whenever it returns nil error.
func ComputeParallelCtx(ctx context.Context, pts []geom.Vector, workers int) ([]int, error) {
	if err := validate(pts); err != nil {
		return nil, err
	}
	return computeParallelKernel(ctx, pts, parallel.Resolve(workers))
}

// dcParallel mirrors dcRec, spawning goroutines for the first
// `depth` split levels. The two halves share the worker budget; the
// merge at each level runs after both halves return and may use the
// full budget of its subtree.
func dcParallel(ctx context.Context, pts []geom.Vector, idx []int, depth, workers int) []int {
	if depth <= 0 || len(idx) <= 2048 {
		return dcRec(pts, idx)
	}
	sorted := append([]int(nil), idx...)
	sort.Slice(sorted, func(a, b int) bool {
		// Exact ordered comparisons keep the order transitive.
		pa, pb := pts[sorted[a]][0], pts[sorted[b]][0]
		if pa < pb {
			return true
		}
		if pa > pb {
			return false
		}
		return sorted[a] < sorted[b]
	})
	mid := len(sorted) / 2
	low, high := sorted[:mid], sorted[mid:]
	half := (workers + 1) / 2
	var skyLow, skyHigh []int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		skyLow = dcParallel(ctx, pts, low, depth-1, half)
	}()
	skyHigh = dcParallel(ctx, pts, high, depth-1, half)
	wg.Wait()
	// Same two-way cross-filter as the sequential merge (see dcRec
	// for why high-vs-low is required under first-dimension ties),
	// with each direction's dominance scans fanned out: survivors are
	// flagged per slot and collected in the sequential order.
	merged := make([]int, 0, len(skyLow)+len(skyHigh))
	merged = appendUndominated(ctx, pts, merged, skyHigh, skyLow, workers)
	merged = appendUndominated(ctx, pts, merged, skyLow, skyHigh, workers)
	return merged
}

// appendUndominated appends to dst the members of cand not dominated
// by any member of against, preserving cand order.
func appendUndominated(ctx context.Context, pts []geom.Vector, dst, cand, against []int, workers int) []int {
	if parallel.Resolve(workers) == 1 || len(cand) < mergeParThreshold {
		for _, ci := range cand {
			if !dominatedByAny(pts, pts[ci], against) {
				dst = append(dst, ci)
			}
		}
		return dst
	}
	keep := make([]bool, len(cand))
	fill := func(start, end int) {
		for i := start; i < end; i++ {
			keep[i] = !dominatedByAny(pts, pts[cand[i]], against)
		}
	}
	err := parallel.For(ctx, len(cand), workers, mergeParGrain, func(start, end int) error {
		fill(start, end)
		return nil
	})
	if err != nil {
		// Canceled mid-merge (or, for the Background-rooted compat
		// path, unreachable): fall back to the sequential fill so the
		// returned skyline stays correct — correctness must not depend
		// on the fan-out completing.
		fill(0, len(cand))
	}
	for i, ok := range keep {
		if ok {
			dst = append(dst, cand[i])
		}
	}
	return dst
}

// dominatedByAny reports whether p is dominated by any point of the
// index set against, via the matrix kernel's row-form dominance
// (decision-identical to geom.Dominates).
func dominatedByAny(pts []geom.Vector, p geom.Vector, against []int) bool {
	for _, ai := range against {
		if mat.DominatesRows(pts[ai], p) {
			return true
		}
	}
	return false
}
