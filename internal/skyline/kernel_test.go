package skyline

import (
	"context"
	"math"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

var kernelGens = []struct {
	name string
	fn   func(n, d int, seed int64) ([]geom.Vector, error)
}{
	{"independent", dataset.Independent},
	{"correlated", dataset.Correlated},
	{"anticorrelated", dataset.AntiCorrelated},
}

func equalInts(t *testing.T, ctxt string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: |%d| vs |%d|\ngot  %v\nwant %v", ctxt, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d, want %d", ctxt, i, got[i], want[i])
		}
	}
}

// TestKernelMatchesReferences pins the blocked kernel against SFS and
// the brute-force oracle across dimensions, distributions, and sizes
// spanning the rebuild schedule (several rebuilds at n=3000 for
// anti-correlated data).
func TestKernelMatchesReferences(t *testing.T) {
	for _, g := range kernelGens {
		for d := 2; d <= 6; d++ {
			for _, n := range []int{50, 700, 3000} {
				pts, err := g.fn(n, d, int64(n*d))
				if err != nil {
					t.Fatal(err)
				}
				want, err := Compute(pts, SFS)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Compute(pts, Kernel)
				if err != nil {
					t.Fatal(err)
				}
				equalInts(t, g.name, got, want)
				if n <= 700 {
					equalInts(t, g.name+"/brute", got, brute(pts))
				}
			}
		}
	}
}

// TestKernelSumTieExactness is the adversarial float case the window's
// tombstone map exists for: a dominated point whose float64 coordinate
// sum TIES its dominator's, arriving first in the stable
// descending-sum order. A plain SFS-style window would admit it and
// never evict; the kernel must not leak it. Exercises both the generic
// and the d=4 specialized paths.
func TestKernelSumTieExactness(t *testing.T) {
	big := math.Ldexp(1, 53) // ulp = 2: adding 0.25 or 0.5 both round away
	cases := [][]geom.Vector{
		{
			{big, 0.25}, // dominated, same fl sum, lower index
			{big, 0.5},  // dominator
			{1, 1},
		},
		{
			{big, 1, 1, 0.25},
			{big, 1, 1, 0.5},
			{1, 1, 1, 1},
		},
	}
	for ci, pts := range cases {
		sa, sb := pts[0].Sum(), pts[1].Sum()
		if math.Float64bits(sa) != math.Float64bits(sb) {
			t.Fatalf("case %d: sums not tied (%v vs %v) — construction broken", ci, sa, sb)
		}
		if !geom.Dominates(pts[1], pts[0]) {
			t.Fatalf("case %d: construction broken, no dominance", ci)
		}
		got, err := computeKernel(pts)
		if err != nil {
			t.Fatal(err)
		}
		equalInts(t, "sum-tie", got, brute(pts))
	}
}

// TestKernelDuplicatesRetained: exact duplicates tie on sum and
// dominate nobody — all copies must survive, same as the scalar
// algorithms guarantee.
func TestKernelDuplicatesRetained(t *testing.T) {
	pts := []geom.Vector{
		{0.9, 0.1}, {0.5, 0.5}, {0.9, 0.1}, {0.2, 0.3}, {0.5, 0.5},
	}
	got, err := computeKernel(pts)
	if err != nil {
		t.Fatal(err)
	}
	equalInts(t, "duplicates", got, []int{0, 1, 2, 4})
}

// TestKernelIndexedSubset: the gather form must equal the kernel run
// on the copied-out subset, with original indices preserved.
func TestKernelIndexedSubset(t *testing.T) {
	pts, err := dataset.Independent(400, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	subset := make([]int, 0, 200)
	for i := 0; i < len(pts); i += 2 {
		subset = append(subset, i)
	}
	got, err := computeKernelIndexed(pts, subset)
	if err != nil {
		t.Fatal(err)
	}
	sub := make([]geom.Vector, len(subset))
	for k, i := range subset {
		sub[k] = pts[i]
	}
	want := brute(sub)
	for i := range want {
		want[i] = subset[want[i]]
	}
	equalInts(t, "indexed", got, want)
	if empty, err := computeKernelIndexed(pts, []int{}); err != nil || empty != nil {
		t.Fatalf("empty subset: %v, %v", empty, err)
	}
}

// TestParallelKernelMatchesSequential forces real striping (GOMAXPROCS
// is 1 in CI containers, which legitimately disables it) and checks
// the stripe-union merge returns the identical skyline.
func TestParallelKernelMatchesSequential(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, g := range kernelGens {
		pts, err := g.fn(4000, 4, 77)
		if err != nil {
			t.Fatal(err)
		}
		want, err := computeKernel(pts)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 8} {
			got, err := computeParallelKernel(context.Background(), pts, w)
			if err != nil {
				t.Fatal(err)
			}
			equalInts(t, g.name, got, want)
		}
	}
}

// TestParallelKernelCanceled: a canceled context surfaces as an error
// once striping is actually in play.
func TestParallelKernelCanceled(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	pts, err := dataset.Independent(4000, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := computeParallelKernel(ctx, pts, 4); err == nil {
		t.Fatal("canceled context accepted")
	}
}

// TestKernelAlgorithmRegistered: the public dispatch path.
func TestKernelAlgorithmRegistered(t *testing.T) {
	if Kernel.String() != "Kernel" {
		t.Fatalf("Kernel.String() = %q", Kernel.String())
	}
	pts := []geom.Vector{{0.9, 0.1}, {0.1, 0.9}, {0.8, 0.05}}
	got, err := Of(pts)
	if err != nil {
		t.Fatal(err)
	}
	equalInts(t, "Of", got, []int{0, 1})
}
