// The blocked skyline kernel: a sort-filter-skyline pass over packed
// rows with a two-tier dominance window. This is the default
// algorithm behind Of and ComputeParallel; BNL/SFS/DC remain as the
// scalar references the differential suite pins it against.
//
// Structure, in arrival order of the descending-coordinate-sum radix
// sort (mat.SortIdxByFloatDesc — O(n), it replaces the comparison
// sort as the setup cost at n=100k):
//
//   - Hot tier: the window entries with the highest kill counts,
//     scanned linearly first. Dominance kills are heavily skewed — a
//     few dozen "killer" points reject the vast majority of arrivals
//     — so a periodically re-sorted kill-count prefix ends most scans
//     in a handful of comparisons.
//   - Cold tier: the remaining entries, clustered by argmax
//     coordinate into blocks of kernelBlock rows summarized by their
//     componentwise maximum (mat.ComponentMaxInto). A block whose
//     maximum fails to dominate the arrival on some coordinate is
//     skipped whole — sound because dominance is monotone in the
//     dominator (see the block-max discipline in internal/mat).
//   - Unclustered tail: entries admitted since the last rebuild,
//     scanned linearly. Rebuilds re-sort by kill count and re-cluster
//     at geometrically growing window sizes, so total rebuild work is
//     O(|sky| log |sky| · d) — noise next to the scan.
//
// Sum-tie exactness: a dominator's coordinate sum is ≥ the dominated
// point's even in float64 (fl addition is monotone), so sorting by
// descending sum means a window entry can be dominated only by a
// LATER arrival whose float sum ties its own. The window tracks
// equal-sum entries in a side map and tombstones any entry a later
// tied arrival dominates. Tombstoned rows stay in the scan tiers —
// harmless, since anything they dominate is transitively dominated by
// their killer, which is also in the window — and are dropped from
// the final result. This makes the kernel's output the exact,
// order-independent skyline on every input, including adversarial
// float-sum ties where a plain SFS window can leak a dominated point.
package skyline

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/parallel"
)

const (
	// kernelBlock rows per cold-tier block max.
	kernelBlock = 16
	// kernelHot: entries kept in the linear kill-count tier.
	kernelHot = 256
	// kernelRebuild0: window size triggering the first rebuild;
	// subsequent triggers grow by 5/4.
	kernelRebuild0 = 128
	// kernelMinN: below this, plain SFS beats the kernel's setup.
	kernelMinN = 512
)

// domWindow is the two-tier dominance window. All row storage is
// plain scratch owned by the window (never PointMatrix views).
type domWindow struct {
	d       int
	win     []float64 // packed rows, rebuild order
	winIdx  []int32   // original point index per entry
	killCnt []int32
	dead    []bool // tombstoned by a sum-tied later dominator

	sumPos map[uint64][]int32 // float bits of row sum -> entry positions

	bmax      []float64 // cold-tier block maxima
	hot       int       // entries [0,hot) scanned linearly first
	clustered int       // entries [hot,clustered) covered by bmax
	rebuildAt int

	// lastKill is the window position of the entry credited with the
	// most recent dominated()/dominated4() kill — the ε-cover's killer
	// cache reads it to remember which entry handles a direction cell.
	// Only valid immediately after a probe that returned true.
	lastKill int
}

func newDomWindow(d int) *domWindow {
	return &domWindow{
		d:         d,
		sumPos:    make(map[uint64][]int32),
		rebuildAt: kernelRebuild0,
	}
}

// dominated reports whether any window entry dominates q, crediting
// the killer's count. Tombstoned entries may report true: their
// killer is also in the window and dominates q transitively, so the
// decision is unchanged.
func (w *domWindow) dominated(q []float64) bool {
	d := w.d
	if d == 4 {
		return w.dominated4(q)
	}
	for i := 0; i < w.hot; i++ {
		if mat.DominatesRows(w.win[i*d:(i+1)*d], q) {
			w.killCnt[i]++
			w.lastKill = i
			return true
		}
	}
	nb := (w.clustered - w.hot + kernelBlock - 1) / kernelBlock
	for b := 0; b < nb; b++ {
		bm := w.bmax[b*d : (b+1)*d]
		skip := false
		for j := 0; j < d; j++ {
			if bm[j] < q[j] {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		lo := w.hot + b*kernelBlock
		hi := min(lo+kernelBlock, w.clustered)
		for i := lo; i < hi; i++ {
			if mat.DominatesRows(w.win[i*d:(i+1)*d], q) {
				w.killCnt[i]++
				w.lastKill = i
				return true
			}
		}
	}
	for i := w.clustered; i < len(w.winIdx); i++ {
		if mat.DominatesRows(w.win[i*d:(i+1)*d], q) {
			w.killCnt[i]++
			w.lastKill = i
			return true
		}
	}
	return false
}

// dominated4 is the d=4 specialization: the block probe and the
// member test both scalarize into registers (this loop is ~2/3 of
// kernel preprocessing time at the bench shape).
func (w *domWindow) dominated4(q []float64) bool {
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	win := w.win
	for i := 0; i < w.hot; i++ {
		r := win[i*4 : i*4+4]
		if min(min(r[0]-q0, r[1]-q1), min(r[2]-q2, r[3]-q3)) >= 0 &&
			max(max(r[0]-q0, r[1]-q1), max(r[2]-q2, r[3]-q3)) > 0 {
			w.killCnt[i]++
			w.lastKill = i
			return true
		}
	}
	nb := (w.clustered - w.hot + kernelBlock - 1) / kernelBlock
	for b := 0; b < nb; b++ {
		bm := w.bmax[b*4 : b*4+4]
		if bm[0] < q0 || bm[1] < q1 || bm[2] < q2 || bm[3] < q3 {
			continue
		}
		lo := w.hot + b*kernelBlock
		hi := min(lo+kernelBlock, w.clustered)
		for i := lo; i < hi; i++ {
			r := win[i*4 : i*4+4]
			if min(min(r[0]-q0, r[1]-q1), min(r[2]-q2, r[3]-q3)) >= 0 &&
				max(max(r[0]-q0, r[1]-q1), max(r[2]-q2, r[3]-q3)) > 0 {
				w.killCnt[i]++
				w.lastKill = i
				return true
			}
		}
	}
	for i := w.clustered; i < len(w.winIdx); i++ {
		r := win[i*4 : i*4+4]
		if min(min(r[0]-q0, r[1]-q1), min(r[2]-q2, r[3]-q3)) >= 0 &&
			max(max(r[0]-q0, r[1]-q1), max(r[2]-q2, r[3]-q3)) > 0 {
			w.killCnt[i]++
			w.lastKill = i
			return true
		}
	}
	return false
}

// add admits q (original index idx, coordinate-sum bits sumBits) to
// the window, tombstoning any sum-tied earlier entry it dominates.
func (w *domWindow) add(q []float64, idx int32, sumBits uint64) {
	d := w.d
	for _, pos := range w.sumPos[sumBits] {
		if !w.dead[pos] && mat.DominatesRows(q, w.win[pos*int32(d):(pos+1)*int32(d)]) {
			w.dead[pos] = true
		}
	}
	pos := int32(len(w.winIdx))
	w.win = append(w.win, q...)
	w.winIdx = append(w.winIdx, idx)
	w.killCnt = append(w.killCnt, 0)
	w.dead = append(w.dead, false)
	w.sumPos[sumBits] = append(w.sumPos[sumBits], pos)
	if len(w.winIdx) >= w.rebuildAt {
		w.rebuild()
		w.rebuildAt = len(w.winIdx) * 5 / 4
	}
}

// rebuild re-sorts entries by kill count (hot tier) and re-clusters
// the cold tier by argmax coordinate so block maxima stay tight.
func (w *domWindow) rebuild() {
	d := w.d
	nw := len(w.winIdx)
	ord := make([]int, nw)
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		if w.killCnt[ord[a]] != w.killCnt[ord[b]] {
			return w.killCnt[ord[a]] > w.killCnt[ord[b]]
		}
		return ord[a] < ord[b]
	})
	h := min(kernelHot, nw)
	cold := ord[h:]
	am := func(i int) int {
		r := w.win[i*d : (i+1)*d]
		best := 0
		for j := 1; j < d; j++ {
			if r[j] > r[best] {
				best = j
			}
		}
		return best
	}
	sort.Slice(cold, func(a, b int) bool {
		ga, gb := am(cold[a]), am(cold[b])
		if ga != gb {
			return ga < gb
		}
		return w.win[cold[a]*d+ga] > w.win[cold[b]*d+gb]
	})
	nwin := make([]float64, nw*d)
	nidx := make([]int32, nw)
	nkill := make([]int32, nw)
	ndead := make([]bool, nw)
	remap := make([]int32, nw) // old position -> new position, for sumPos
	for pos, o := range ord {
		copy(nwin[pos*d:(pos+1)*d], w.win[o*d:(o+1)*d])
		nidx[pos] = w.winIdx[o]
		nkill[pos] = w.killCnt[o]
		ndead[pos] = w.dead[o]
		remap[o] = int32(pos)
	}
	for k, ps := range w.sumPos {
		for i, p := range ps {
			ps[i] = remap[p]
		}
		w.sumPos[k] = ps
	}
	w.win, w.winIdx, w.killCnt, w.dead = nwin, nidx, nkill, ndead
	w.hot = h
	w.clustered = nw
	nb := (nw - h + kernelBlock - 1) / kernelBlock
	if cap(w.bmax) < nb*d {
		w.bmax = make([]float64, 0, nb*d)
	}
	w.bmax = w.bmax[:nb*d]
	for b := 0; b < nb; b++ {
		lo := h + b*kernelBlock
		hi := min(lo+kernelBlock, nw)
		bm := w.bmax[b*d : (b+1)*d]
		copy(bm, w.win[lo*d:(lo+1)*d])
		for i := lo + 1; i < hi; i++ {
			r := w.win[i*d : (i+1)*d]
			for j := 0; j < d; j++ {
				if r[j] > bm[j] {
					bm[j] = r[j]
				}
			}
		}
	}
}

// result returns the surviving original indices, ascending.
func (w *domWindow) result() []int {
	out := make([]int, 0, len(w.winIdx))
	for i, idx := range w.winIdx {
		if !w.dead[i] {
			out = append(out, int(idx))
		}
	}
	sort.Ints(out)
	return out
}

// computeKernel is the blocked skyline pass over all of pts. It
// assumes validate(pts) passed.
func computeKernel(pts []geom.Vector) ([]int, error) {
	n := len(pts)
	if n == 0 {
		return nil, nil
	}
	return computeKernelIndexed(pts, nil)
}

// computeKernelIndexed runs the kernel over pts restricted to subset
// (nil means all points), returning original indices ascending.
func computeKernelIndexed(pts []geom.Vector, subset []int) ([]int, error) {
	n := len(subset)
	if subset == nil {
		n = len(pts)
	}
	if n == 0 {
		return nil, nil
	}
	at := func(k int) int {
		if subset == nil {
			return k
		}
		return subset[k]
	}
	d := len(pts[at(0)])
	rows := make([]float64, n*d)
	sums := make([]float64, n)
	ord := make([]int32, n)
	for k := 0; k < n; k++ {
		p := pts[at(k)]
		copy(rows[k*d:(k+1)*d], p)
		sums[k] = p.Sum()
		ord[k] = int32(k)
	}
	if err := mat.SortIdxByFloatDesc(sums, ord); err != nil {
		return nil, fmt.Errorf("skyline: kernel sort: %w", err)
	}
	w := newDomWindow(d)
	for _, k := range ord {
		q := rows[int(k)*d : (int(k)+1)*d]
		if !w.dominated(q) {
			w.add(q, int32(at(int(k))), math.Float64bits(sums[k]))
		}
	}
	return w.result(), nil
}

// computeParallelKernel stripes pts across workers, runs the kernel
// per stripe, then runs it once more over the union of stripe
// skylines — skyline(pts) == skyline(∪ skyline(stripe)) because a
// point dominated in pts is dominated by some skyline point of its
// own stripe. Exactness of the per-stripe kernel makes the result
// identical to the sequential kernel on every input.
func computeParallelKernel(ctx context.Context, pts []geom.Vector, workers int) ([]int, error) {
	n := len(pts)
	stripes := workers
	// Striping trades extra total work (weaker per-stripe pruning plus
	// the union pass) for wall-clock, so never stripe wider than the
	// hardware can actually run concurrently — on an oversubscribed
	// box the sequential kernel is the faster plan for every width.
	if g := runtime.GOMAXPROCS(0); stripes > g {
		stripes = g
	}
	if stripes > (n+kernelMinN-1)/kernelMinN {
		stripes = (n + kernelMinN - 1) / kernelMinN
	}
	if stripes < 2 {
		return computeKernel(pts)
	}
	per := (n + stripes - 1) / stripes
	parts := make([][]int, stripes)
	err := parallel.For(ctx, stripes, workers, 1, func(start, end int) error {
		for s := start; s < end; s++ {
			lo, hi := s*per, min((s+1)*per, n)
			if lo >= hi {
				continue
			}
			subset := make([]int, hi-lo)
			for i := range subset {
				subset[i] = lo + i
			}
			part, err := computeKernelIndexed(pts, subset)
			if err != nil {
				return err
			}
			parts[s] = part
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var union []int
	for _, p := range parts {
		union = append(union, p...)
	}
	return computeKernelIndexed(pts, union)
}
