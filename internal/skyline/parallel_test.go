package skyline

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

func TestComputeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 500 + rng.Intn(8000)
		d := 2 + rng.Intn(4)
		pts := make([]geom.Vector, n)
		for i := range pts {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = float64(rng.Intn(64)) / 63 // ties on purpose
			}
			pts[i] = p
		}
		want, err := Compute(pts, DC)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 7} {
			got, err := ComputeParallel(pts, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d workers=%d: parallel differs (%d vs %d points)",
					trial, workers, len(got), len(want))
			}
		}
	}
}

func TestComputeParallelValidates(t *testing.T) {
	if _, err := ComputeParallel([]geom.Vector{{1, 2}, {1}}, 2); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestBBSkylineMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		n := 50 + rng.Intn(3000)
		d := 2 + rng.Intn(4)
		pts := make([]geom.Vector, n)
		for i := range pts {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = float64(rng.Intn(40)) / 39 // ties on purpose
			}
			pts[i] = p
		}
		want, err := Compute(pts, SFS)
		if err != nil {
			t.Fatal(err)
		}
		got, err := BBSkyline(pts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d d=%d): BBS %d points vs SFS %d",
				trial, n, d, len(got), len(want))
		}
	}
}

func TestBBSkylineEmptyAndErrors(t *testing.T) {
	got, err := BBSkyline(nil)
	if err != nil || got != nil {
		t.Fatalf("empty: %v %v", got, err)
	}
	if _, err := BBSkyline([]geom.Vector{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged accepted")
	}
}
