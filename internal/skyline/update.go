package skyline

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Incremental skyline maintenance for Dataset.Insert/Delete: patch a
// cached skyline instead of recomputing it. Both operators return
// sets provably identical to a from-scratch Compute on the mutated
// points (pinned by the differential suite in update_test.go):
// dominance is an exact, tolerance-free predicate here, and skyline
// membership ("dominated by nobody") does not depend on scan order.

// UpdateInsert patches prevSky — the skyline of pts[:len(pts)-1] —
// after appending the point at index len(pts)-1. It returns the new
// skyline (ascending), the prevSky members the new point evicted
// (ascending, original indices), and whether the new point joined.
// When the new point is dominated, the returned slice IS prevSky
// (shared, not copied) — the O(|sky|·d) no-op fast path epoch folds
// rely on.
func UpdateInsert(pts []geom.Vector, prevSky []int) (sky []int, removed []int, inserted bool, err error) {
	if len(pts) == 0 {
		return nil, nil, false, fmt.Errorf("skyline: UpdateInsert on empty point set")
	}
	newIdx := len(pts) - 1
	q := pts[newIdx]
	for _, s := range prevSky {
		if s < 0 || s >= newIdx {
			return nil, nil, false, fmt.Errorf("skyline: UpdateInsert: cached skyline index %d out of range (new point at %d)", s, newIdx)
		}
		if geom.Dominates(pts[s], q) {
			// Dominated by a skyline member ⟺ dominated by anyone
			// (dominance is transitive), so the skyline is unchanged.
			return prevSky, nil, false, nil
		}
	}
	sky = make([]int, 0, len(prevSky)+1)
	for _, s := range prevSky {
		if geom.Dominates(q, pts[s]) {
			removed = append(removed, s)
		} else {
			sky = append(sky, s)
		}
	}
	sky = append(sky, newIdx) // newIdx is the maximum: order stays ascending
	return sky, removed, true, nil
}

// UpdateDelete patches prevSky — the skyline of the pre-delete
// points oldPts — after removing index delIdx, under the Dataset
// shift-down convention (indices above delIdx decrease by one). It
// returns the post-delete skyline and the indices that ENTERED it,
// both ascending in post-delete indices, plus whether the deleted
// point was a skyline member (when it wasn't, the skyline is
// unchanged up to index shifting and entrants is nil).
//
// Entrant recovery is the delicate direction. A non-skyline point i
// enters iff every pre-delete dominator of i is gone, and since any
// dominator chain tops out at a skyline member, that means delIdx was
// i's ONLY skyline dominator — in particular delIdx dominates i. So
// candidates are found with one O(n·d) pass over the deleted point's
// dominated set, then filtered against the surviving skyline and
// finally against each other: candidates CAN dominate one another
// (a chain delIdx ≻ x ≻ i leaves both x and i with delIdx as sole
// skyline dominator), so the survivors of the mini-skyline among
// candidates are exactly the entrants.
func UpdateDelete(oldPts []geom.Vector, prevSky []int, delIdx int) (sky []int, entrants []int, wasSky bool, err error) {
	n := len(oldPts)
	if delIdx < 0 || delIdx >= n {
		return nil, nil, false, fmt.Errorf("skyline: UpdateDelete index %d out of range (n=%d)", delIdx, n)
	}
	shift := func(o int) int {
		if o > delIdx {
			return o - 1
		}
		return o
	}
	for _, s := range prevSky {
		if s < 0 || s >= n {
			return nil, nil, false, fmt.Errorf("skyline: UpdateDelete: cached skyline index %d out of range (n=%d)", s, n)
		}
		if s == delIdx {
			wasSky = true
		}
	}
	if !wasSky {
		// Deleting a dominated point frees nobody: its dominators are
		// all still present.
		sky = make([]int, 0, len(prevSky))
		for _, s := range prevSky {
			sky = append(sky, shift(s))
		}
		return sky, nil, false, nil
	}
	survivors := make([]int, 0, len(prevSky)-1)
	for _, s := range prevSky {
		if s != delIdx {
			survivors = append(survivors, s)
		}
	}
	inSky := make(map[int]bool, len(prevSky))
	for _, s := range prevSky {
		inSky[s] = true
	}
	dp := oldPts[delIdx]
	var cand []int
	for i := 0; i < n; i++ {
		if i == delIdx || inSky[i] {
			continue
		}
		if geom.Dominates(dp, oldPts[i]) {
			cand = append(cand, i)
		}
	}
	// Filter against the surviving skyline, then the mini-skyline
	// among what remains.
	var freed []int
	for _, i := range cand {
		dominated := false
		for _, s := range survivors {
			if geom.Dominates(oldPts[s], oldPts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			freed = append(freed, i)
		}
	}
	for _, i := range freed {
		dominated := false
		for _, j := range freed {
			if j != i && geom.Dominates(oldPts[j], oldPts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			entrants = append(entrants, shift(i))
		}
	}
	sky = make([]int, 0, len(survivors)+len(entrants))
	for _, s := range survivors {
		sky = append(sky, shift(s))
	}
	sky = append(sky, entrants...)
	sort.Ints(sky)
	sort.Ints(entrants)
	return sky, entrants, true, nil
}
