package skyline

import (
	"container/heap"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// BBSkyline computes the skyline with the branch-and-bound skyline
// algorithm of Papadias, Tao, Fu and Seeger (the paper's reference
// [10] for skyline computation), over an STR-bulk-loaded R-tree.
//
// Entries (nodes and points) are processed best-first by the sum of
// their upper MBR corner coordinates. For a max-skyline this order
// guarantees that any dominator of a point is popped before the
// point itself, so a popped point that no current skyline member
// dominates is final; a node whose upper corner is dominated can be
// pruned wholesale. BBS is progressive (results stream out in
// best-first order) and I/O-optimal in the external-memory setting;
// here it serves as the index-based skyline operator of the family,
// cross-validated against BNL/SFS/DC.
func BBSkyline(pts []geom.Vector) ([]int, error) {
	if err := validate(pts); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, nil
	}
	tree, err := rtree.Build(pts, 0)
	if err != nil {
		return nil, err
	}
	return BBSkylineOnTree(tree)
}

// BBSkylineOnTree runs BBS over an already-built R-tree (reusable
// across queries on the same data).
func BBSkylineOnTree(tree *rtree.Tree) ([]int, error) {
	pq := &entryHeap{}
	heap.Init(pq)
	pushNode := func(n *rtree.Node) {
		heap.Push(pq, entry{node: n, point: -1, key: sum(n.Box.Max)})
	}
	pushNode(tree.Root)

	var sky []int
	dominatedBySky := func(p geom.Vector) bool {
		for _, s := range sky {
			if geom.Dominates(tree.Point(s), p) {
				return true
			}
		}
		return false
	}
	for pq.Len() > 0 {
		e := heap.Pop(pq).(entry)
		if e.point >= 0 {
			p := tree.Point(e.point)
			if !dominatedBySky(p) {
				sky = append(sky, e.point)
			}
			continue
		}
		// Prune the whole subtree if its best corner is dominated.
		if dominatedBySky(e.node.Box.Max) {
			continue
		}
		if e.node.IsLeaf() {
			for _, i := range e.node.Points {
				if !dominatedBySky(tree.Point(i)) {
					heap.Push(pq, entry{node: nil, point: i, key: sum(tree.Point(i))})
				}
			}
			continue
		}
		for _, c := range e.node.Children {
			if !dominatedBySky(c.Box.Max) {
				pushNode(c)
			}
		}
	}
	sort.Ints(sky)
	return sky, nil
}

func sum(v geom.Vector) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// entry is a heap element: either an R-tree node or a point index.
type entry struct {
	node  *rtree.Node
	point int
	key   float64
}

// entryHeap is a max-heap on key with deterministic tie-breaks
// (points before nodes, then smaller index first).
type entryHeap []entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(a, b int) bool {
	// Exact ordered comparisons keep the order transitive.
	if h[a].key > h[b].key {
		return true
	}
	if h[a].key < h[b].key {
		return false
	}
	// Ties: points pop before nodes so equal-sum duplicates are kept
	// deterministically; among points, lower index first.
	if (h[a].point >= 0) != (h[b].point >= 0) {
		return h[a].point >= 0
	}
	return h[a].point < h[b].point
}
func (h entryHeap) Swap(a, b int)   { h[a], h[b] = h[b], h[a] }
func (h *entryHeap) Push(x any)     { *h = append(*h, x.(entry)) }
func (h *entryHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
