package skyline

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// brute is the obvious O(n²) oracle.
func brute(pts []geom.Vector) []int {
	var out []int
	for i := range pts {
		if IsSkylinePoint(pts, i) {
			out = append(out, i)
		}
	}
	return out
}

var algos = []Algorithm{BNL, SFS, DC}

func TestKnownSmall(t *testing.T) {
	pts := []geom.Vector{
		{0.94, 0.80}, // p1: skyline
		{0.76, 0.93}, // p2: skyline
		{0.67, 1.00}, // p3: skyline
		{1.00, 0.72}, // p4: skyline
		{0.60, 0.60}, // dominated by p1..p3
		{0.94, 0.79}, // dominated by p1
	}
	want := []int{0, 1, 2, 3}
	for _, a := range algos {
		got, err := Compute(pts, a)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: got %v, want %v", a, got, want)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	for _, a := range algos {
		got, err := Compute(nil, a)
		if err != nil || len(got) != 0 {
			t.Fatalf("%v empty: %v, %v", a, got, err)
		}
		got, err = Compute([]geom.Vector{{1, 2}}, a)
		if err != nil || !reflect.DeepEqual(got, []int{0}) {
			t.Fatalf("%v single: %v, %v", a, got, err)
		}
	}
}

func TestDuplicatesRetained(t *testing.T) {
	pts := []geom.Vector{{1, 1}, {1, 1}, {0.5, 0.5}}
	for _, a := range algos {
		got, err := Compute(pts, a)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, []int{0, 1}) {
			t.Fatalf("%v: got %v, want both duplicates", a, got)
		}
	}
}

func TestAllSkyline(t *testing.T) {
	// Perfect anti-correlation: nobody dominates anybody.
	var pts []geom.Vector
	for i := 0; i < 50; i++ {
		x := float64(i) / 49
		pts = append(pts, geom.Vector{x, 1 - x})
	}
	for _, a := range algos {
		got, err := Compute(pts, a)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(pts) {
			t.Fatalf("%v: %d skyline points, want all %d", a, len(got), len(pts))
		}
	}
}

func TestBadInput(t *testing.T) {
	if _, err := Compute([]geom.Vector{{1, 2}, {1}}, BNL); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := Compute([]geom.Vector{{math.NaN(), 1}}, SFS); err == nil {
		t.Fatal("NaN input accepted")
	}
	if _, err := Compute([]geom.Vector{{1}}, Algorithm(42)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlgorithmsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		d := 1 + rng.Intn(5)
		pts := make([]geom.Vector, n)
		for i := range pts {
			p := make(geom.Vector, d)
			for j := range p {
				// Coarse grid provokes ties and duplicates.
				p[j] = float64(rng.Intn(8)) / 7
			}
			pts[i] = p
		}
		want := brute(pts)
		for _, a := range algos {
			got, err := Compute(pts, a)
			if err != nil {
				t.Fatalf("%v: %v", a, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %v: got %v, want %v", trial, a, got, want)
			}
		}
	}
}

// Property: the skyline is a minimal dominating antichain — no
// member dominates another, and every non-member is dominated by a
// member.
func TestSkylineCharacterization(t *testing.T) {
	f := func(raw [20][3]float64) bool {
		pts := make([]geom.Vector, len(raw))
		for i := range raw {
			p := make(geom.Vector, 3)
			for j := range p {
				p[j] = math.Abs(math.Mod(raw[i][j], 1))
			}
			pts[i] = p
		}
		sky, err := Compute(pts, SFS)
		if err != nil {
			return false
		}
		inSky := make(map[int]bool)
		for _, i := range sky {
			inSky[i] = true
		}
		for _, i := range sky {
			for _, j := range sky {
				if i != j && geom.Dominates(pts[i], pts[j]) {
					return false
				}
			}
		}
		for i := range pts {
			if inSky[i] {
				continue
			}
			dominated := false
			for _, s := range sky {
				if geom.Dominates(pts[s], pts[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmString(t *testing.T) {
	if BNL.String() != "BNL" || SFS.String() != "SFS" || DC.String() != "DC" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Fatal("unknown algorithm String empty")
	}
}

func TestOf(t *testing.T) {
	got, err := Of([]geom.Vector{{1, 0.5}, {0.5, 1}, {0.4, 0.4}})
	if err != nil || !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("Of = %v, %v", got, err)
	}
}
