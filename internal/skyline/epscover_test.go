package skyline

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// coverHolds reports whether every point of pts[lo:hi] is eps-covered
// by some survivor: r ≥ (1−eps)·q componentwise — the one property
// EpsCover promises for eps > 0.
func coverHolds(pts []geom.Vector, lo, hi int, surv []int, eps float64) (int, bool) {
	scale := 1 - eps
	for k := lo; k < hi; k++ {
		q := pts[k]
		covered := false
		for _, r := range surv {
			ok := true
			for j := range q {
				if pts[r][j] < scale*q[j] {
					ok = false
					break
				}
			}
			if ok {
				covered = true
				break
			}
		}
		if !covered {
			return k, false
		}
	}
	return -1, true
}

// TestEpsCoverProperty brute-verifies the cover guarantee across
// distributions, dimensions (the d=4 fast path and the generic one)
// and eps values, and pins the structural contracts: survivors are
// ascending, in range, duplicate-free, and within the probed window.
func TestEpsCoverProperty(t *testing.T) {
	for _, g := range kernelGens {
		for _, d := range []int{2, 4, 5} {
			for _, eps := range []float64{0.01, 0.05, 0.2, 0.6} {
				pts, err := g.fn(900, d, int64(37*d)+int64(eps*1000))
				if err != nil {
					t.Fatal(err)
				}
				lo, hi := 100, 800
				surv, err := EpsCover(pts, lo, hi, eps)
				if err != nil {
					t.Fatal(err)
				}
				if len(surv) == 0 {
					t.Fatalf("%s d=%d eps=%v: empty cover of a non-empty range", g.name, d, eps)
				}
				for i, s := range surv {
					if s < lo || s >= hi {
						t.Fatalf("%s d=%d eps=%v: survivor %d outside [%d, %d)", g.name, d, eps, s, lo, hi)
					}
					if i > 0 && surv[i-1] >= s {
						t.Fatalf("%s d=%d eps=%v: survivors not strictly ascending at %d", g.name, d, eps, i)
					}
				}
				if k, ok := coverHolds(pts, lo, hi, surv, eps); !ok {
					t.Fatalf("%s d=%d eps=%v: point %d not eps-covered by %d survivors",
						g.name, d, eps, k, len(surv))
				}
			}
		}
	}
}

// TestEpsCoverZeroIsSkyline pins the eps = 0 degeneration: the cover
// of a full range must equal the exact skyline index-for-index — the
// property the sharded S=1 byte-identity contract stands on.
func TestEpsCoverZeroIsSkyline(t *testing.T) {
	for _, g := range kernelGens {
		for _, d := range []int{2, 4} {
			pts, err := g.fn(1200, d, int64(11*d))
			if err != nil {
				t.Fatal(err)
			}
			want, err := Of(pts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EpsCover(pts, 0, len(pts), 0)
			if err != nil {
				t.Fatal(err)
			}
			equalInts(t, g.name+"/eps0", got, want)
		}
	}
}

// TestEpsCoverShrinks checks the economic point of the pass: a looser
// eps never yields more survivors than the exact skyline of the same
// range, and survivor counts are deterministic across repeat calls.
func TestEpsCoverShrinks(t *testing.T) {
	pts, err := dataset.AntiCorrelated(4000, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := EpsCover(pts, 0, len(pts), 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := len(exact)
	for _, eps := range []float64{0.02, 0.1, 0.4} {
		surv, err := EpsCover(pts, 0, len(pts), eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(surv) > prev {
			t.Fatalf("eps=%v: %d survivors, more than %d at tighter eps", eps, len(surv), prev)
		}
		again, err := EpsCover(pts, 0, len(pts), eps)
		if err != nil {
			t.Fatal(err)
		}
		equalInts(t, "deterministic", again, surv)
		prev = len(surv)
	}
}

// TestEpsCoverBadInput exercises every rejection edge: eps outside
// [0, 1) or NaN, ranges outside the slice, inverted ranges,
// dimension mismatches and non-finite coordinates inside the range —
// all typed ErrBadInput — plus the empty-range success case.
func TestEpsCoverBadInput(t *testing.T) {
	pts := []geom.Vector{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}}
	for _, eps := range []float64{-0.01, 1, 1.5, math.NaN()} {
		if _, err := EpsCover(pts, 0, len(pts), eps); !errors.Is(err, ErrBadInput) {
			t.Fatalf("eps=%v: err = %v, want ErrBadInput", eps, err)
		}
	}
	for _, r := range [][2]int{{-1, 2}, {0, 4}, {2, 1}} {
		if _, err := EpsCover(pts, r[0], r[1], 0.1); !errors.Is(err, ErrBadInput) {
			t.Fatalf("range %v: err = %v, want ErrBadInput", r, err)
		}
	}
	surv, err := EpsCover(pts, 1, 1, 0.1)
	if err != nil || surv != nil {
		t.Fatalf("empty range: got %v, %v; want nil, nil", surv, err)
	}
	ragged := []geom.Vector{{0.1, 0.2}, {0.3}, {0.5, 0.6}}
	if _, err := EpsCover(ragged, 0, len(ragged), 0.1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("ragged: err = %v, want ErrBadInput", err)
	}
	raggedD4 := []geom.Vector{{1, 2, 3, 4}, {1, 2, 3}}
	if _, err := EpsCover(raggedD4, 0, len(raggedD4), 0.1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("ragged d4: err = %v, want ErrBadInput", err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		nf := []geom.Vector{{0.1, 0.2}, {bad, 0.4}}
		if _, err := EpsCover(nf, 0, len(nf), 0.1); !errors.Is(err, ErrBadInput) {
			t.Fatalf("non-finite %v: err = %v, want ErrBadInput", bad, err)
		}
		// Outside the range the bad point must not be touched.
		if _, err := EpsCover(nf, 0, 1, 0.1); err != nil {
			t.Fatalf("non-finite outside range: unexpected err %v", err)
		}
	}
	huge := []geom.Vector{{math.MaxFloat64, math.MaxFloat64}, {0.1, 0.2}}
	if _, err := EpsCover(huge, 0, len(huge), 0.1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("sum overflow: err = %v, want ErrBadInput", err)
	}
}

// TestOfSubset pins the subset skyline against filtering the direct
// skyline of the gathered points, and its index validation.
func TestOfSubset(t *testing.T) {
	pts, err := dataset.Independent(600, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	subset := make([]int, 0, 300)
	for i := 0; i < len(pts); i += 2 {
		subset = append(subset, i)
	}
	got, err := OfSubset(pts, subset)
	if err != nil {
		t.Fatal(err)
	}
	sub := make([]geom.Vector, len(subset))
	for k, i := range subset {
		sub[k] = pts[i]
	}
	local, err := Of(sub)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(local))
	for k, i := range local {
		want[k] = subset[i]
	}
	equalInts(t, "subset-vs-gathered", got, want)

	for _, bad := range [][]int{{-1}, {len(pts)}} {
		if _, err := OfSubset(pts, bad); !errors.Is(err, ErrBadInput) {
			t.Fatalf("subset %v: err = %v, want ErrBadInput", bad, err)
		}
	}
	empty, err := OfSubset(pts, nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty subset: got %v, %v; want empty, nil", empty, err)
	}
}
