// The ε-dominance cover: the approximation-aware counterpart of the
// blocked skyline kernel. EpsCover relaxes the dominance test by a
// multiplicative slack — an arrival q dies when some window entry r
// has r ≥ (1−eps)·q componentwise — which kills arrivals far earlier
// and keeps the window far smaller than the exact kernel, while still
// guaranteeing that every dropped point is (1−eps)-covered by a
// survivor. That is exactly the ε-kernel precondition the sharded
// partition–merge path needs: MRR(survivors over range) ≤ eps.
//
// Two structural facts make the output safe to feed to the exact
// machinery downstream:
//
//   - Every killed point is covered by a *surviving* entry: window
//     entries are only ever tombstoned by a later arrival that
//     dominates them exactly, so coverage chains terminate at a
//     survivor by transitivity.
//   - With eps = 0 the pass is the exact skyline kernel, bit for bit
//     (same radix sort, same window) — the property the S=1
//     differential suite pins.
//
// The eps > 0 pass trades the exact descending-sum radix sort for a
// counting-sort over ~1k sum buckets: cover validity never depended
// on the order (the window is append-only, so a kill always names a
// covering entry), the near-descending order just keeps the strongest
// killers early so the window stays small. The whole pass is three
// sequential sweeps — sum, scatter, probe — with a direction-cell
// killer cache in front of the window, which is what lets one shard
// pass run at a small fraction of the exact kernel's cost at the
// same n.
package skyline

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// coverBuckets is the counting-sort resolution for the eps > 0 cover
// pass: enough buckets that high-sum killers still lead the scan,
// few enough that the histogram stays cache-resident.
const coverBuckets = 1024

// coverGrid is the per-dimension resolution of the killer cache: the
// probe pass quantizes each arrival's direction (its coordinates over
// their sum) on the first min(d−1, 3) dimensions and remembers, per
// cell, the coordinates of the window entry that last killed there.
// Arrivals from the same cell share killers, so the cached entry
// usually kills in a single componentwise compare and the window scan
// becomes the slow path. The cache is advisory only — every kill it
// reports is the window's own r ≥ (1−eps)·q test evaluated against a
// known window entry, so correctness never depends on cell geometry.
const coverGrid = 48

// EpsCover returns ascending indices S ⊆ [lo, hi) such that every
// point of pts[lo:hi] is eps-covered by some member of S: for each q
// there is r ∈ S with r_j ≥ (1−eps)·q_j on every dimension — hence
// the maximum regret ratio of S measured against the range is ≤ eps.
// eps = 0 degenerates to the exact skyline of the range.
func EpsCover(pts []geom.Vector, lo, hi int, eps float64) ([]int, error) {
	if math.IsNaN(eps) || eps < 0 || eps >= 1 {
		return nil, fmt.Errorf("%w: cover eps %v outside [0, 1)", ErrBadInput, eps)
	}
	if lo < 0 || hi > len(pts) || lo > hi {
		return nil, fmt.Errorf("%w: cover range [%d, %d) outside [0, %d]", ErrBadInput, lo, hi, len(pts))
	}
	n := hi - lo
	if n == 0 {
		return nil, nil
	}
	if eps == 0 { //kregret:allow floatcmp: exact-skyline sentinel, a configured value, not arithmetic
		subset := make([]int, n)
		for k := range subset {
			subset[k] = lo + k
		}
		return OfSubset(pts, subset)
	}
	d := len(pts[lo])

	// Pass 1: accumulate coordinate sums and their range. A non-finite
	// coordinate forces a non-finite sum (infinities never cancel back
	// to a finite value), so finiteness is checked on the sum alone and
	// diagnosed per-coordinate only on failure.
	sums := make([]float64, n)
	minS, maxS := math.Inf(1), math.Inf(-1)
	for k := 0; k < n; k++ {
		p := pts[lo+k]
		if len(p) != d {
			return nil, fmt.Errorf("%w: point %d has dimension %d, want %d", ErrBadInput, lo+k, len(p), d)
		}
		var s float64
		if d == 4 {
			s = p[0] + p[1] + p[2] + p[3]
		} else {
			for j := 0; j < d; j++ {
				s += p[j]
			}
		}
		if math.IsNaN(s) || math.IsInf(s, 0) {
			if !p.IsFinite() {
				return nil, fmt.Errorf("%w: point %d has non-finite coordinates", ErrBadInput, lo+k)
			}
			return nil, fmt.Errorf("%w: point %d coordinate sum overflows", ErrBadInput, lo+k)
		}
		sums[k] = s
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}

	// Pass 2: counting-sort scatter into near-descending sum order.
	// Bucket 0 holds the highest sums; ties and within-bucket order
	// follow arrival order, which keeps the pass deterministic.
	bscale := 0.0
	if span := maxS - minS; span > 0 {
		bscale = (coverBuckets - 1) / span
	}
	bucketOf := func(s float64) int {
		b := int((maxS - s) * bscale)
		if b < 0 {
			b = 0
		} else if b >= coverBuckets {
			b = coverBuckets - 1
		}
		return b
	}
	var off [coverBuckets + 1]int
	for k := 0; k < n; k++ {
		off[bucketOf(sums[k])+1]++
	}
	for b := 0; b < coverBuckets; b++ {
		off[b+1] += off[b]
	}
	rows := make([]float64, n*d)
	orig := make([]int32, n)
	for k := 0; k < n; k++ {
		b := bucketOf(sums[k])
		pos := off[b]
		off[b]++
		if d == 4 {
			p := pts[lo+k]
			r := rows[pos*4 : pos*4+4 : pos*4+4]
			r[0], r[1], r[2], r[3] = p[0], p[1], p[2], p[3]
		} else {
			copy(rows[pos*d:(pos+1)*d], pts[lo+k])
		}
		orig[pos] = int32(k)
	}

	// Pass 3: linear probe over the packed rows. The probe is the
	// arrival scaled by (1−eps); a kill means some window entry
	// (1−eps)-covers the original, a miss admits the original so the
	// window stays an eps-antichain. Strict-dominance conservatism
	// (an entry exactly equal to the probe does not kill) only ever
	// keeps extra survivors. The tie key is the recomputed row sum —
	// admissions are rare enough that recomputing beats carrying the
	// scattered sums through the pass. The killer cache is consulted
	// only for arrivals with strictly positive coordinates, which is
	// what lets the zero value mark an empty slot: a zero row can never
	// cover a positive scaled probe, so the cache needs no
	// initialization sweep.
	w := newDomWindow(d)
	kd := d - 1
	if kd > 3 {
		kd = 3
	}
	slots := 1
	for j := 0; j < kd; j++ {
		slots *= coverGrid
	}
	cache := make([]float64, slots*d)
	if d == 4 {
		coverProbe4(w, rows, orig, cache, lo, n, eps)
	} else {
		coverProbe(w, rows, orig, cache, lo, n, d, kd, eps)
	}
	return w.result(), nil
}

// coverProbe4 is the d=4 specialization of the probe pass: the sum,
// the scaled probe, the cell key and the cached-killer compare all
// scalarize into registers, so a cache hit retires in a handful of
// instructions and only cache misses reach the dominance window.
func coverProbe4(w *domWindow, rows []float64, orig []int32, cache []float64, lo, n int, eps float64) {
	scale := 1 - eps
	probe := make([]float64, 4)
	for pos := 0; pos < n; pos++ {
		q := rows[pos*4 : pos*4+4 : pos*4+4]
		q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
		p0, p1, p2, p3 := scale*q0, scale*q1, scale*q2, scale*q3
		s := q0 + q1 + q2 + q3
		key := -1
		if q0 > 0 && q1 > 0 && q2 > 0 && q3 > 0 {
			inv := coverGrid / s //kregret:allow naninf: all coordinates strictly positive, so s > 0
			c0, c1, c2 := int(q0*inv), int(q1*inv), int(q2*inv)
			if c0 < 0 {
				c0 = 0
			} else if c0 >= coverGrid {
				c0 = coverGrid - 1
			}
			if c1 < 0 {
				c1 = 0
			} else if c1 >= coverGrid {
				c1 = coverGrid - 1
			}
			if c2 < 0 {
				c2 = 0
			} else if c2 >= coverGrid {
				c2 = coverGrid - 1
			}
			key = (c0*coverGrid+c1)*coverGrid + c2
			kc := cache[key*4 : key*4+4 : key*4+4]
			if kc[0] >= p0 && kc[1] >= p1 && kc[2] >= p2 && kc[3] >= p3 {
				continue
			}
		}
		probe[0], probe[1], probe[2], probe[3] = p0, p1, p2, p3
		if w.dominated(probe) {
			if key >= 0 {
				copy(cache[key*4:key*4+4], w.win[w.lastKill*4:w.lastKill*4+4])
			}
			continue
		}
		w.add(q, int32(lo)+orig[pos], math.Float64bits(s))
		if key >= 0 {
			copy(cache[key*4:key*4+4], q)
		}
	}
}

// coverProbe is the general-dimension probe pass; structure mirrors
// coverProbe4.
func coverProbe(w *domWindow, rows []float64, orig []int32, cache []float64, lo, n, d, kd int, eps float64) {
	scale := 1 - eps
	probe := make([]float64, d)
	for pos := 0; pos < n; pos++ {
		q := rows[pos*d : (pos+1)*d]
		s := 0.0
		positive := true
		for j := 0; j < d; j++ {
			probe[j] = scale * q[j]
			s += q[j]
			if q[j] <= 0 {
				positive = false
			}
		}
		key := -1
		if positive {
			inv := coverGrid / s //kregret:allow naninf: all coordinates strictly positive, so s > 0
			key = 0
			for j := 0; j < kd; j++ {
				c := int(q[j] * inv)
				if c < 0 {
					c = 0
				} else if c >= coverGrid {
					c = coverGrid - 1
				}
				key = key*coverGrid + c
			}
			kc := cache[key*d : (key+1)*d : (key+1)*d]
			covered := true
			for j := 0; j < d; j++ {
				if kc[j] < probe[j] {
					covered = false
					break
				}
			}
			if covered {
				continue
			}
		}
		if w.dominated(probe) {
			if key >= 0 {
				copy(cache[key*d:(key+1)*d], w.win[w.lastKill*d:(w.lastKill+1)*d])
			}
			continue
		}
		w.add(q, int32(lo)+orig[pos], math.Float64bits(s))
		if key >= 0 {
			copy(cache[key*d:(key+1)*d], q)
		}
	}
}

// OfSubset computes the exact skyline of pts restricted to the given
// index subset with the blocked kernel, returning original indices
// ascending.
func OfSubset(pts []geom.Vector, subset []int) ([]int, error) {
	if len(subset) == 0 {
		return nil, nil
	}
	sub := make([]geom.Vector, len(subset))
	for k, i := range subset {
		if i < 0 || i >= len(pts) {
			return nil, fmt.Errorf("%w: subset index %d outside [0, %d)", ErrBadInput, i, len(pts))
		}
		sub[k] = pts[i]
	}
	if err := validate(sub); err != nil {
		return nil, err
	}
	return computeKernelIndexed(pts, subset)
}
