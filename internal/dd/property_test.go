package dd

// Property-based tests (testing/quick) of the double-description
// engine: random cutting sequences must preserve the structural
// invariants and the V-representation must stay consistent with the
// H-representation.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// randomPolytope builds a box and applies a random cut sequence,
// returning nil if the polytope was emptied (valid outcome for some
// sequences, skipped by the properties).
func randomPolytope(seed int64) *Polytope {
	rng := rand.New(rand.NewSource(seed))
	d := 2 + rng.Intn(4)
	upper := make([]float64, d)
	for i := range upper {
		upper[i] = 0.5 + rng.Float64()
	}
	p, err := NewBox(upper)
	if err != nil {
		return nil
	}
	cuts := rng.Intn(10)
	for c := 0; c < cuts; c++ {
		n := make(geom.Vector, d)
		for j := range n {
			n[j] = rng.NormFloat64()
		}
		// Offset keeps a neighbourhood of some interior point, so the
		// polytope stays non-empty with high probability; emptied
		// polytopes abort the instance.
		off := 0.05 + rng.Float64()
		if _, err := p.AddHalfspace(n, off); err != nil {
			return nil
		}
	}
	return p
}

// Property: every vertex satisfies all constraints, sits exactly on
// its tight constraints, and tight normals span the space.
func TestPropertyVertexConsistency(t *testing.T) {
	f := func(seed int64) bool {
		p := randomPolytope(seed)
		if p == nil {
			return true
		}
		for _, v := range p.Vertices() {
			if !p.Contains(v.Point, 1e-6) {
				return false
			}
			if len(v.Tight) < p.Dim() {
				return false
			}
			for _, c := range v.Tight {
				if math.Abs(p.Constraint(int(c)).Eval(v.Point)) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: no two vertices coincide.
func TestPropertyNoDuplicateVertices(t *testing.T) {
	f := func(seed int64) bool {
		p := randomPolytope(seed)
		if p == nil {
			return true
		}
		vs := p.Vertices()
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				if vs[i].Point.Equal(vs[j].Point, 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the support function is monotone under cutting — adding
// a halfspace can only reduce max q·x.
func TestPropertySupportMonotoneUnderCuts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPolytope(seed ^ 0x7a)
		if p == nil {
			return true
		}
		d := p.Dim()
		q := make(geom.Vector, d)
		for j := range q {
			q[j] = rng.Float64()
		}
		before, _ := p.MaxDot(q)
		n := make(geom.Vector, d)
		for j := range n {
			n[j] = rng.NormFloat64()
		}
		if _, err := p.AddHalfspace(n, 0.05+rng.Float64()); err != nil {
			return true // emptied: nothing to compare
		}
		after, _ := p.MaxDot(q)
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddResult bookkeeping is exact — removed IDs disappear,
// added vertices appear, on-plane vertices survive and are tight on
// the new constraint.
func TestPropertyAddResultBookkeeping(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPolytope(seed ^ 0x99)
		if p == nil {
			return true
		}
		d := p.Dim()
		before := map[int]bool{}
		for _, v := range p.Vertices() {
			before[v.ID] = true
		}
		n := make(geom.Vector, d)
		for j := range n {
			n[j] = rng.NormFloat64()
		}
		res, err := p.AddHalfspace(n, 0.05+rng.Float64())
		if err != nil {
			return true
		}
		now := map[int]bool{}
		for _, v := range p.Vertices() {
			now[v.ID] = true
		}
		for _, id := range res.RemovedIDs {
			if now[id] {
				return false
			}
		}
		for _, v := range res.Added {
			if !now[v.ID] || before[v.ID] {
				return false
			}
		}
		newIdx := int32(p.NumConstraints() - 1)
		for _, v := range res.OnPlane {
			if !now[v.ID] || !v.tightOn(newIdx) {
				return false
			}
		}
		if res.Redundant && (len(res.RemovedIDs) > 0 || len(res.Added) > 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
