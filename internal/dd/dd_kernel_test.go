package dd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/mat"
)

// TestMaxDotMatchesReference cross-validates the kernel-backed MaxDot
// against the pre-kernel vertex loop on evolving polytopes: value bits
// and argmax vertex must agree after every insertion, for directions
// including negatives and zero.
func TestMaxDotMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 2, 3, 4, 5} {
		upper := make([]float64, d)
		for i := range upper {
			upper[i] = 0.5 + rng.Float64()
		}
		p, err := NewBox(upper)
		if err != nil {
			t.Fatal(err)
		}
		check := func(stage string) {
			for trial := 0; trial < 25; trial++ {
				q := make(geom.Vector, d)
				for j := range q {
					q[j] = rng.NormFloat64()
				}
				if trial == 0 {
					for j := range q {
						q[j] = 0
					}
				}
				gotVal, gotArg := p.MaxDot(q)
				wantVal, wantArg := p.maxDotRef(q)
				if math.Float64bits(gotVal) != math.Float64bits(wantVal) || gotArg != wantArg {
					t.Fatalf("d=%d %s: MaxDot(%v) = (%v, %p), reference = (%v, %p)",
						d, stage, q, gotVal, gotArg, wantVal, wantArg)
				}
			}
		}
		check("box")
		for ins := 0; ins < 8; ins++ {
			n := make(geom.Vector, d)
			for j := range n {
				n[j] = 0.2 + rng.Float64()
			}
			if _, err := p.AddHalfspace(n, 1); err != nil {
				t.Fatalf("d=%d insertion %d: %v", d, ins, err)
			}
			check("after insertion")
		}
	}
}

// TestSupportsIntoMatchesMaxDot: the batch kernel must agree with
// per-point MaxDot bit for bit, including the vertex-ID side channel.
func TestSupportsIntoMatchesMaxDot(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := 4
	p, err := NewBox([]float64{1, 2, 0.5, 3})
	if err != nil {
		t.Fatal(err)
	}
	for ins := 0; ins < 5; ins++ {
		n := make(geom.Vector, d)
		for j := range n {
			n[j] = 0.2 + rng.Float64()
		}
		if _, err := p.AddHalfspace(n, 1); err != nil {
			t.Fatal(err)
		}
	}
	pts := make([]geom.Vector, 60)
	for i := range pts {
		pts[i] = make(geom.Vector, d)
		for j := range pts[i] {
			pts[i][j] = rng.Float64() * 3
		}
	}
	qm := mat.FromVectors(pts)
	for _, span := range [][2]int{{0, 60}, {10, 10}, {17, 43}} {
		start, end := span[0], span[1]
		vals := make([]float64, end-start)
		ids := make([]int, end-start)
		p.SupportsInto(qm, start, end, vals, ids)
		for i := start; i < end; i++ {
			wantVal, wantArg := p.MaxDot(pts[i])
			if math.Float64bits(vals[i-start]) != math.Float64bits(wantVal) {
				t.Fatalf("row %d: SupportsInto val %x, MaxDot %x", i, math.Float64bits(vals[i-start]), math.Float64bits(wantVal))
			}
			if wantArg == nil {
				if ids[i-start] != -1 {
					t.Fatalf("row %d: id = %d, want -1 for nil argmax", i, ids[i-start])
				}
			} else if ids[i-start] != wantArg.ID {
				t.Fatalf("row %d: id = %d, MaxDot argmax ID = %d", i, ids[i-start], wantArg.ID)
			}
		}
	}
	// nil ids is allowed: values only.
	vals := make([]float64, 60)
	p.SupportsInto(qm, 0, 60, vals, nil)
	for i := range pts {
		wantVal, _ := p.MaxDot(pts[i])
		if math.Float64bits(vals[i]) != math.Float64bits(wantVal) {
			t.Fatalf("row %d (nil ids): val %x, want %x", i, math.Float64bits(vals[i]), math.Float64bits(wantVal))
		}
	}
}
