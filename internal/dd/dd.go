// Package dd maintains the vertex set of a convex polytope
//
//	Q = { ω ∈ R^d : A·ω ≤ b }
//
// under incremental insertion of halfspaces, using the double
// description method (Motzkin et al.) with an exact, degeneracy-robust
// adjacency test.
//
// Why this is the heart of the reproduction: the paper's GeoGreedy
// algorithm maintains the convex hull Conv(S) of the orthotope closure
// of the selection set S and answers ray-shooting queries against its
// faces. Because Conv(S) is downward closed inside the positive
// orthant, its polar dual restricted to ω ≥ 0 is exactly
//
//	Q(S) = { ω ≥ 0 : ω·p ≤ 1  for every p ∈ S },
//
// and the faces of Conv(S) not passing through the origin correspond
// one-to-one with the vertices of Q(S). The paper's critical ratio
// (Definition 3) becomes
//
//	cr(q, S) = 1 / max_{v ∈ vertices(Q(S))} v·q ,
//
// and inserting a point p into S is inserting the halfspace ω·p ≤ 1
// here: the vertices this deletes are the primal faces the paper
// removes, and the vertices this creates are the primal's "new faces
// containing p_o" (Section IV-A). Package core builds GeoGreedy's
// incremental index directly on the Added/Removed sets reported by
// AddHalfspace.
package dd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/mat"
)

// Errors reported by the polytope constructors and AddHalfspace.
var (
	ErrBadDimension = errors.New("dd: dimension must be between 1 and 16")
	ErrEmpty        = errors.New("dd: polytope became empty")
	ErrBadHalfspace = errors.New("dd: malformed halfspace")
)

// Vertex is a vertex of the polytope. Tight lists the indices of the
// constraints satisfied with equality at the vertex, sorted
// ascending; it always contains at least dim entries whose normals
// span R^dim.
type Vertex struct {
	// ID is unique within the polytope and never reused, so callers
	// can cache references across insertions.
	ID int
	// Point is the vertex location.
	Point geom.Vector
	// Tight holds sorted indices into Polytope constraints.
	Tight []int32
}

// tightOn reports whether constraint c is tight at the vertex.
func (v *Vertex) tightOn(c int32) bool {
	i := sort.Search(len(v.Tight), func(i int) bool { return v.Tight[i] >= c })
	return i < len(v.Tight) && v.Tight[i] == c
}

// Polytope is a bounded polyhedron maintained as both a constraint
// list (the H-representation) and a vertex list (the
// V-representation), kept consistent by AddHalfspace.
type Polytope struct {
	dim    int
	cons   []geom.Hyperplane // a·x ≤ b
	verts  []*Vertex         // alive vertices, compacted after each insertion
	nextID int
	// tv mirrors verts as a column-major matrix (column c = verts[c]),
	// rebuilt whenever the vertex set changes, so MaxDot and
	// SupportsInto run as contiguous kernels instead of pointer-chasing
	// the vertex slice. See internal/mat for the bit-exactness
	// contract.
	tv *mat.Transposed

	// Insertion scratch, reused across AddHalfspace calls: with k
	// insertions per query and queries pooled by core, these would
	// otherwise allocate on every greedy iteration.
	colScratch []geom.Vector
	valScratch []float64
	clsScratch []vclass
	cntScratch map[int]int
}

// vclass classifies a vertex against an incoming halfspace.
type vclass int8

const (
	below vclass = iota // strictly inside
	on
	above // to be removed
)

// rebuildTV regenerates the transposed vertex matrix from the current
// vertex set. Called after every vertex-set change; refine has already
// snapped new vertex points by then, so the matrix captures the final
// coordinates.
func (p *Polytope) rebuildTV() {
	if cap(p.colScratch) < len(p.verts) {
		p.colScratch = make([]geom.Vector, len(p.verts))
	}
	cols := p.colScratch[:len(p.verts)]
	for c, v := range p.verts {
		cols[c] = v.Point
	}
	if p.tv == nil {
		p.tv = &mat.Transposed{}
	}
	p.tv.SetCols(p.dim, cols)
}

// AddResult describes the effect of one halfspace insertion.
type AddResult struct {
	// Redundant is true when the halfspace removed no vertex (the
	// polytope is unchanged except for tightness bookkeeping).
	Redundant bool
	// RemovedIDs holds the IDs of vertices cut off by the halfspace.
	RemovedIDs []int
	// Added holds the vertices created on the new hyperplane.
	Added []*Vertex
	// OnPlane holds pre-existing vertices that happen to lie on the
	// new hyperplane (kept, now tight on it). Together with Added
	// they are all vertices of the polytope's new face: a maximizer
	// of a linear function whose old argmax was removed lies in
	// Added ∪ OnPlane — incremental callers must rescan both.
	OnPlane []*Vertex
}

// onEps classifies a vertex as lying on a hyperplane when
// |a·v − b| ≤ onEps·(1+|b|).
const onEps = 1e-9

// NewBox returns the axis-aligned box {0 ≤ x_i ≤ upper[i]} as a
// Polytope. Constraint indices are fixed: 0..d−1 are the lower bounds
// −x_i ≤ 0 and d..2d−1 the upper bounds x_i ≤ upper[i]. The box has
// 2^d vertices, so the dimension is capped at 16.
func NewBox(upper []float64) (*Polytope, error) {
	d := len(upper)
	if d < 1 || d > 16 {
		return nil, fmt.Errorf("%w: got %d", ErrBadDimension, d)
	}
	for i, u := range upper {
		if !(u > 0) || math.IsInf(u, 0) {
			return nil, fmt.Errorf("%w: upper bound %d is %g, need finite positive", ErrBadHalfspace, i, u)
		}
	}
	p := &Polytope{dim: d}
	for i := 0; i < d; i++ {
		n := make(geom.Vector, d)
		n[i] = -1
		p.cons = append(p.cons, geom.Hyperplane{Normal: n, Offset: 0})
	}
	for i := 0; i < d; i++ {
		n := make(geom.Vector, d)
		n[i] = 1
		p.cons = append(p.cons, geom.Hyperplane{Normal: n, Offset: upper[i]})
	}
	for mask := 0; mask < 1<<d; mask++ {
		pt := make(geom.Vector, d)
		tight := make([]int32, 0, d)
		for i := 0; i < d; i++ {
			if mask&(1<<i) != 0 {
				pt[i] = upper[i]
			}
		}
		// Tight sets must be sorted ascending: lower bounds first.
		for i := 0; i < d; i++ {
			if mask&(1<<i) == 0 {
				tight = append(tight, int32(i))
			}
		}
		for i := 0; i < d; i++ {
			if mask&(1<<i) != 0 {
				tight = append(tight, int32(d+i))
			}
		}
		p.verts = append(p.verts, &Vertex{ID: p.nextID, Point: pt, Tight: tight})
		p.nextID++
	}
	p.rebuildTV()
	return p, nil
}

// Dim returns the ambient dimension.
func (p *Polytope) Dim() int { return p.dim }

// NumVertices returns the number of live vertices.
func (p *Polytope) NumVertices() int { return len(p.verts) }

// NumConstraints returns the number of inserted halfspaces, including
// the initial box constraints.
func (p *Polytope) NumConstraints() int { return len(p.cons) }

// Vertices returns the live vertex slice. Callers must not modify it;
// the slice is invalidated by the next AddHalfspace.
func (p *Polytope) Vertices() []*Vertex { return p.verts }

// Constraint returns the i-th halfspace as a hyperplane a·x = b with
// the interior on the a·x < b side.
func (p *Polytope) Constraint(i int) geom.Hyperplane { return p.cons[i] }

// accPool recycles the per-call accumulator scratch of MaxDot, sized
// to the largest vertex set seen.
var accPool = sync.Pool{New: func() any { s := make([]float64, 0, 64); return &s }}

func getAcc(n int) *[]float64 {
	p := accPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// MaxDot returns the maximum of q·v over all vertices and the argmax
// vertex. For a bounded polytope this is the support function of Q in
// direction q. Returns (−Inf, nil) when the polytope has no vertices.
//
// The scan runs on the transposed vertex matrix (mat.MaxDotCols),
// which is bit-identical to the reference vertex loop (maxDotRef):
// same per-vertex dot bits, same first-max reduction in vertex order,
// same NaN-never-wins comparison semantics. A property test
// cross-validates the two on every polytope the suite builds.
func (p *Polytope) MaxDot(q geom.Vector) (float64, *Vertex) {
	if len(p.verts) == 0 {
		return math.Inf(-1), nil
	}
	if p.tv == nil || p.tv.Cols() != len(p.verts) {
		p.rebuildTV()
	}
	acc := getAcc(len(p.verts))
	c, best := p.tv.MaxDotCols(q, *acc)
	accPool.Put(acc)
	if c < 0 {
		// Every dot was NaN: the reference loop would have kept its
		// initial (−Inf, nil) state.
		return math.Inf(-1), nil
	}
	return best, p.verts[c]
}

// maxDotRef is the pre-kernel reference scan, kept for the
// cross-validation property test.
func (p *Polytope) maxDotRef(q geom.Vector) (float64, *Vertex) {
	best := math.Inf(-1)
	var arg *Vertex
	for _, v := range p.verts {
		if d := v.Point.Dot(q); d > best {
			best, arg = d, v
		}
	}
	return best, arg
}

// SupportsInto evaluates the support function for rows [start, end)
// of qm in one batch: vals[i-start] receives max_v v·q_i and, when
// ids is non-nil, ids[i-start] the argmax vertex ID (−1 if every dot
// is NaN). Each entry is bit-identical to MaxDot on the same row. The
// method only reads the polytope, so concurrent calls from parallel
// scan chunks are safe as long as no insertion runs.
func (p *Polytope) SupportsInto(qm *mat.PointMatrix, start, end int, vals []float64, ids []int) {
	if p.tv == nil || p.tv.Cols() != len(p.verts) {
		p.rebuildTV()
	}
	acc := getAcc(len(p.verts))
	for i := start; i < end; i++ {
		c, best := p.tv.MaxDotCols(qm.Row(i), *acc)
		vals[i-start] = best
		if ids != nil {
			if c < 0 {
				ids[i-start] = -1
			} else {
				ids[i-start] = p.verts[c].ID
			}
		}
	}
	accPool.Put(acc)
}

// Contains reports whether x satisfies every constraint within eps.
func (p *Polytope) Contains(x geom.Vector, eps float64) bool {
	for _, c := range p.cons {
		if c.Eval(x) > eps {
			return false
		}
	}
	return true
}

// AddHalfspace intersects the polytope with {x : normal·x ≤ offset}
// and reports the removed and created vertices. It returns ErrEmpty
// (leaving the polytope in an undefined state) if the intersection
// has no vertices.
func (p *Polytope) AddHalfspace(normal geom.Vector, offset float64) (AddResult, error) {
	return p.AddHalfspaceCtx(context.Background(), normal, offset)
}

// AddHalfspaceCtx is AddHalfspace with a cancellation check before
// the vertex classification pass and again before the (potentially
// quadratic) edge-generation pass, so long insertion sequences driven
// by package core stop promptly when the caller's context ends. A
// canceled insertion leaves the polytope in an undefined state, like
// ErrEmpty does.
func (p *Polytope) AddHalfspaceCtx(ctx context.Context, normal geom.Vector, offset float64) (AddResult, error) {
	if err := ctx.Err(); err != nil {
		return AddResult{}, fmt.Errorf("dd: halfspace insertion canceled: %w", err)
	}
	if len(normal) != p.dim {
		return AddResult{}, fmt.Errorf("%w: normal has dimension %d, want %d", ErrBadHalfspace, len(normal), p.dim)
	}
	if !normal.IsFinite() || math.IsNaN(offset) || math.IsInf(offset, 0) {
		return AddResult{}, fmt.Errorf("%w: non-finite coefficients", ErrBadHalfspace)
	}
	if fault.Enabled && fault.Active(fault.SiteDDAddHalfspace) {
		return AddResult{}, fmt.Errorf("%w (injected degeneracy)", ErrEmpty)
	}
	cIdx := int32(len(p.cons))
	p.cons = append(p.cons, geom.Hyperplane{Normal: normal.Clone(), Offset: offset})

	tol := onEps * (1 + math.Abs(offset))
	if cap(p.valScratch) < len(p.verts) {
		p.valScratch = make([]float64, len(p.verts))
		p.clsScratch = make([]vclass, len(p.verts))
	}
	vals := p.valScratch[:len(p.verts)]
	classes := p.clsScratch[:len(p.verts)]
	var nAbove, nOn int
	for i, v := range p.verts {
		val := normal.Dot(v.Point) - offset
		vals[i] = val
		switch {
		case val > tol:
			classes[i] = above
			nAbove++
		case val >= -tol:
			classes[i] = on
			nOn++
		default:
			classes[i] = below
		}
	}

	if nAbove == 0 {
		// Redundant halfspace: record tightness on coincident
		// vertices and keep everything.
		for i, v := range p.verts {
			if classes[i] == on {
				v.Tight = insertSorted(v.Tight, cIdx)
			}
		}
		return AddResult{Redundant: true}, nil
	}
	if nAbove == len(p.verts) {
		return AddResult{}, ErrEmpty
	}

	// Partition.
	var kept []*Vertex
	var keptVals []float64
	var removedIdx []int
	var onPlane []*Vertex
	removedIDs := make([]int, 0, nAbove)
	for i, v := range p.verts {
		switch classes[i] {
		case above:
			removedIdx = append(removedIdx, i)
			removedIDs = append(removedIDs, v.ID)
		case on:
			v.Tight = insertSorted(v.Tight, cIdx)
			kept = append(kept, v)
			keptVals = append(keptVals, vals[i])
			onPlane = append(onPlane, v)
		default:
			kept = append(kept, v)
			keptVals = append(keptVals, vals[i])
		}
	}

	// Generate new vertices on edges between strictly-inside kept
	// vertices and removed vertices. Edges from "on" vertices do not
	// create new vertices (the crossing point is the on-vertex
	// itself).
	//
	// Candidate pruning: an edge's endpoints share at least dim−1
	// tight constraints, so for each removed vertex we only test kept
	// vertices reachable through the per-constraint incidence index.
	if err := ctx.Err(); err != nil {
		return AddResult{}, fmt.Errorf("dd: halfspace insertion canceled: %w", err)
	}
	incidence := p.buildIncidence(kept)
	var added []*Vertex
	if p.cntScratch == nil {
		p.cntScratch = make(map[int]int, 64)
	}
	counts := p.cntScratch // kept index → #shared tight constraints
	for _, ri := range removedIdx {
		w := p.verts[ri]
		wVal := vals[ri]
		clear(counts)
		for _, c := range w.Tight {
			for _, ki := range incidence[c] {
				counts[ki]++
			}
		}
		for ki, cnt := range counts {
			if cnt < p.dim-1 {
				continue
			}
			u := kept[ki]
			if keptVals[ki] >= -tol {
				continue // "on" vertex; no new vertex from this edge
			}
			common := intersectSorted(u.Tight, w.Tight)
			if !p.isEdge(common) {
				continue
			}
			uVal := keptVals[ki]
			// Crossing point: x = u + t(w−u), t = −uVal/(wVal−uVal).
			den := wVal - uVal
			if den <= 0 {
				continue // numerically impossible: wVal > 0 > uVal
			}
			t := -uVal / den
			pt := make(geom.Vector, p.dim)
			for j := range pt {
				pt[j] = u.Point[j] + t*(w.Point[j]-u.Point[j])
			}
			tight := insertSorted(append([]int32(nil), common...), cIdx)
			nv := &Vertex{ID: -1, Point: pt, Tight: tight}
			p.refine(nv)
			added = appendUnique(added, nv)
		}
	}
	for _, nv := range added {
		nv.ID = p.nextID
		p.nextID++
	}
	p.verts = append(kept, added...)
	if len(p.verts) == 0 {
		return AddResult{}, ErrEmpty
	}
	p.rebuildTV()
	return AddResult{RemovedIDs: removedIDs, Added: added, OnPlane: onPlane}, nil
}

// buildIncidence maps every constraint index to the kept-vertex
// indices tight on it.
func (p *Polytope) buildIncidence(kept []*Vertex) map[int32][]int {
	m := make(map[int32][]int, 2*p.dim)
	for ki, v := range kept {
		for _, c := range v.Tight {
			m[c] = append(m[c], ki)
		}
	}
	return m
}

// isEdge reports whether the constraints in common define a
// one-dimensional face, i.e. their normals have rank dim−1. This is
// the exact adjacency test of the double description method and is
// correct under arbitrary degeneracy.
func (p *Polytope) isEdge(common []int32) bool {
	if len(common) < p.dim-1 {
		return false
	}
	m := linalg.NewMatrix(len(common), p.dim)
	for r, c := range common {
		copy(m.Row(r), p.cons[c].Normal)
	}
	return linalg.Rank(m, 1e-9) == p.dim-1
}

// refine snaps a vertex onto the exact intersection of dim linearly
// independent tight constraints, eliminating interpolation drift
// across long insertion sequences. On numerical failure the
// interpolated coordinates are kept.
func (p *Polytope) refine(v *Vertex) {
	rows := make([][]float64, 0, p.dim)
	rhs := make([]float64, 0, p.dim)
	m := linalg.NewMatrix(p.dim, p.dim)
	for _, c := range v.Tight {
		cand := append(rows, p.cons[c].Normal)
		mt := linalg.NewMatrix(len(cand), p.dim)
		for r, row := range cand {
			copy(mt.Row(r), row)
		}
		if linalg.Rank(mt, 1e-9) == len(cand) {
			rows = cand
			rhs = append(rhs, p.cons[c].Offset)
			if len(rows) == p.dim {
				break
			}
		}
	}
	if len(rows) < p.dim {
		return
	}
	for r, row := range rows {
		copy(m.Row(r), row)
	}
	x, err := linalg.Solve(m, rhs)
	if err != nil {
		return
	}
	pt := geom.Vector(x)
	if !pt.IsFinite() || !pt.Equal(v.Point, 1e-5) {
		return // reject wild solutions; keep the interpolated point
	}
	v.Point = pt
}

// appendUnique adds nv to added unless a geometrically identical
// vertex is already present; duplicate crossings happen when more
// than dim constraints meet the cutting plane at one point. When a
// duplicate is found their tight sets are merged.
func appendUnique(added []*Vertex, nv *Vertex) []*Vertex {
	for _, v := range added {
		if v.Point.Equal(nv.Point, 1e-8) {
			v.Tight = unionSorted(v.Tight, nv.Tight)
			return added
		}
	}
	return append(added, nv)
}

// insertSorted inserts c into the sorted slice s if absent.
func insertSorted(s []int32, c int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= c })
	if i < len(s) && s[i] == c {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = c
	return s
}

// intersectSorted returns the intersection of two sorted slices.
func intersectSorted(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// unionSorted returns the union of two sorted slices.
func unionSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
