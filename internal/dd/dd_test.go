package dd

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/lp"
)

func newBoxT(t *testing.T, upper ...float64) *Polytope {
	t.Helper()
	p, err := NewBox(upper)
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	return p
}

func TestNewBoxShape(t *testing.T) {
	p := newBoxT(t, 1, 2, 3)
	if p.Dim() != 3 {
		t.Fatalf("Dim = %d", p.Dim())
	}
	if p.NumVertices() != 8 {
		t.Fatalf("NumVertices = %d, want 8", p.NumVertices())
	}
	if p.NumConstraints() != 6 {
		t.Fatalf("NumConstraints = %d, want 6", p.NumConstraints())
	}
	// Every vertex must have exactly d sorted tight constraints and
	// lie on them.
	for _, v := range p.Vertices() {
		if len(v.Tight) != 3 {
			t.Fatalf("vertex %v has %d tight constraints", v.Point, len(v.Tight))
		}
		if !sort.SliceIsSorted(v.Tight, func(a, b int) bool { return v.Tight[a] < v.Tight[b] }) {
			t.Fatalf("tight set unsorted: %v", v.Tight)
		}
		for _, c := range v.Tight {
			if got := p.Constraint(int(c)).Eval(v.Point); math.Abs(got) > 1e-12 {
				t.Fatalf("vertex %v not on its tight constraint %d (eval %v)", v.Point, c, got)
			}
		}
		if !p.Contains(v.Point, 1e-12) {
			t.Fatalf("vertex %v outside polytope", v.Point)
		}
	}
}

func TestNewBoxErrors(t *testing.T) {
	if _, err := NewBox(nil); err == nil {
		t.Fatal("empty box accepted")
	}
	if _, err := NewBox(make([]float64, 17)); err == nil {
		t.Fatal("dimension 17 accepted")
	}
	if _, err := NewBox([]float64{1, 0}); err == nil {
		t.Fatal("zero upper bound accepted")
	}
	if _, err := NewBox([]float64{1, math.Inf(1)}); err == nil {
		t.Fatal("infinite upper bound accepted")
	}
}

func TestAddHalfspaceSimpleCut(t *testing.T) {
	// Cut the unit square with x + y ≤ 1: removes (1,1), adds nothing
	// new geometrically beyond (1,0) and (0,1) which are on the plane.
	p := newBoxT(t, 1, 1)
	res, err := p.AddHalfspace(geom.Vector{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Redundant {
		t.Fatal("cut reported redundant")
	}
	if len(res.RemovedIDs) != 1 {
		t.Fatalf("removed %d vertices, want 1", len(res.RemovedIDs))
	}
	if len(res.Added) != 0 {
		t.Fatalf("added %d vertices, want 0 (corners already on the plane)", len(res.Added))
	}
	if len(res.OnPlane) != 2 {
		t.Fatalf("OnPlane %d, want 2", len(res.OnPlane))
	}
	if p.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3 (triangle)", p.NumVertices())
	}
}

func TestAddHalfspaceGeneralCut(t *testing.T) {
	// Cut unit square with x + 2y ≤ 1.5: removes (0,1) and (1,1),
	// creates (0, 0.75) and (1, 0.25).
	p := newBoxT(t, 1, 1)
	res, err := p.AddHalfspace(geom.Vector{1, 2}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RemovedIDs) != 2 || len(res.Added) != 2 {
		t.Fatalf("removed %d added %d, want 2/2", len(res.RemovedIDs), len(res.Added))
	}
	wantPts := map[[2]float64]bool{{0, 0.75}: false, {1, 0.25}: false}
	for _, v := range res.Added {
		key := [2]float64{math.Round(v.Point[0]*1e9) / 1e9, math.Round(v.Point[1]*1e9) / 1e9}
		if _, ok := wantPts[key]; !ok {
			t.Fatalf("unexpected new vertex %v", v.Point)
		}
		wantPts[key] = true
	}
	for k, seen := range wantPts {
		if !seen {
			t.Fatalf("missing new vertex %v", k)
		}
	}
}

func TestAddHalfspaceRedundant(t *testing.T) {
	p := newBoxT(t, 1, 1)
	res, err := p.AddHalfspace(geom.Vector{1, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Redundant {
		t.Fatal("far halfspace not reported redundant")
	}
	if p.NumVertices() != 4 {
		t.Fatalf("vertices changed: %d", p.NumVertices())
	}
}

func TestAddHalfspaceEmpty(t *testing.T) {
	p := newBoxT(t, 1, 1)
	if _, err := p.AddHalfspace(geom.Vector{-1, -1}, -5); err != ErrEmpty {
		t.Fatalf("got %v, want ErrEmpty", err)
	}
}

func TestAddHalfspaceBadInput(t *testing.T) {
	p := newBoxT(t, 1, 1)
	if _, err := p.AddHalfspace(geom.Vector{1}, 1); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := p.AddHalfspace(geom.Vector{math.NaN(), 1}, 1); err == nil {
		t.Fatal("NaN normal accepted")
	}
	if _, err := p.AddHalfspace(geom.Vector{1, 1}, math.Inf(1)); err == nil {
		t.Fatal("Inf offset accepted")
	}
}

func TestVertexIDsStable(t *testing.T) {
	p := newBoxT(t, 1, 1, 1)
	before := map[int]geom.Vector{}
	for _, v := range p.Vertices() {
		before[v.ID] = v.Point.Clone()
	}
	res, err := p.AddHalfspace(geom.Vector{1, 1, 1}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	removed := map[int]bool{}
	for _, id := range res.RemovedIDs {
		removed[id] = true
	}
	for _, v := range p.Vertices() {
		if old, ok := before[v.ID]; ok {
			if removed[v.ID] {
				t.Fatalf("removed ID %d still present", v.ID)
			}
			if !old.Equal(v.Point, 0) {
				t.Fatalf("surviving vertex %d moved", v.ID)
			}
		}
	}
}

// TestDegenerateThroughCorner cuts exactly through existing vertices:
// they must be kept, marked tight, and no duplicates created.
func TestDegenerateThroughCorner(t *testing.T) {
	p := newBoxT(t, 1, 1, 1)
	// Plane x+y+z ≤ 2 passes exactly through (1,1,0),(1,0,1),(0,1,1),
	// cutting off only (1,1,1).
	res, err := p.AddHalfspace(geom.Vector{1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RemovedIDs) != 1 {
		t.Fatalf("removed %d, want 1", len(res.RemovedIDs))
	}
	if len(res.Added) != 0 {
		t.Fatalf("added %d, want 0", len(res.Added))
	}
	if len(res.OnPlane) != 3 {
		t.Fatalf("OnPlane %d, want 3", len(res.OnPlane))
	}
	if p.NumVertices() != 7 {
		t.Fatalf("NumVertices = %d, want 7", p.NumVertices())
	}
	// The on-plane vertices must now list the new constraint tight.
	newIdx := int32(p.NumConstraints() - 1)
	for _, v := range res.OnPlane {
		if !v.tightOn(newIdx) {
			t.Fatalf("on-plane vertex %v missing tight mark", v.Point)
		}
	}
}

// maxDotLP solves max q·x over the polytope's constraint system with
// the simplex solver — the independent oracle for MaxDot.
func maxDotLP(t *testing.T, p *Polytope, q geom.Vector) float64 {
	t.Helper()
	// Variables must be non-negative for lp.Solve; our polytopes here
	// always include x ≥ 0 from NewBox, so drop those constraints and
	// keep the rest.
	var cons []lp.Constraint
	for i := 0; i < p.NumConstraints(); i++ {
		h := p.Constraint(i)
		neg := true
		for _, x := range h.Normal {
			if x > 0 {
				neg = false
				break
			}
		}
		if neg && h.Offset == 0 {
			continue // a −x_i ≤ 0 constraint, implicit in the LP
		}
		cons = append(cons, lp.Constraint{Coeffs: h.Normal, Rel: lp.LE, RHS: h.Offset})
	}
	sol, err := lp.Solve(&lp.Problem{Objective: q, Maximize: true, Constraints: cons})
	if err != nil {
		t.Fatalf("lp oracle: %v", err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("lp oracle status %v", sol.Status)
	}
	return sol.Objective
}

// TestRandomAgainstLP builds random halfspace systems over random
// boxes and checks that for random directions the vertex-based
// support equals the LP optimum — the core soundness property the
// k-regret algorithms rely on.
func TestRandomAgainstLP(t *testing.T) {
	rng := rand.New(rand.NewSource(2014))
	for trial := 0; trial < 60; trial++ {
		d := 2 + rng.Intn(4) // 2..5
		upper := make([]float64, d)
		for i := range upper {
			upper[i] = 0.5 + rng.Float64()
		}
		p, err := NewBox(upper)
		if err != nil {
			t.Fatal(err)
		}
		nCuts := 1 + rng.Intn(8)
		for c := 0; c < nCuts; c++ {
			normal := make(geom.Vector, d)
			for j := range normal {
				normal[j] = 0.05 + rng.Float64()
			}
			// Offsets chosen to usually cut but never empty the
			// polytope (origin always satisfies offset > 0).
			offset := 0.2 + rng.Float64()
			if _, err := p.AddHalfspace(normal, offset); err != nil {
				t.Fatalf("trial %d cut %d: %v", trial, c, err)
			}
		}
		for probe := 0; probe < 10; probe++ {
			q := make(geom.Vector, d)
			for j := range q {
				q[j] = rng.Float64()
			}
			got, arg := p.MaxDot(q)
			want := maxDotLP(t, p, q)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("trial %d: MaxDot = %v (at %v), LP = %v", trial, got, arg.Point, want)
			}
		}
		// Structural invariants after all cuts.
		checkInvariants(t, p)
	}
}

// checkInvariants verifies every vertex is feasible, lies exactly on
// its tight constraints, and that tight constraint normals span R^d.
func checkInvariants(t *testing.T, p *Polytope) {
	t.Helper()
	d := p.Dim()
	for _, v := range p.Vertices() {
		if !p.Contains(v.Point, 1e-6) {
			t.Fatalf("vertex %v infeasible", v.Point)
		}
		if len(v.Tight) < d {
			t.Fatalf("vertex %v has only %d tight constraints", v.Point, len(v.Tight))
		}
		for _, c := range v.Tight {
			h := p.Constraint(int(c))
			if math.Abs(h.Eval(v.Point)) > 1e-6 {
				t.Fatalf("vertex %v not on tight constraint %d", v.Point, c)
			}
		}
	}
	// No duplicate vertices.
	for i, a := range p.Vertices() {
		for _, b := range p.Vertices()[i+1:] {
			if a.Point.Equal(b.Point, 1e-9) {
				t.Fatalf("duplicate vertices %v (ids %d, %d)", a.Point, a.ID, b.ID)
			}
		}
	}
}

// TestIncrementalMatchesFresh verifies that inserting halfspaces one
// by one yields the same vertex set as inserting them in a different
// order (the V-representation is order-independent).
func TestIncrementalMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(3)
		upper := make([]float64, d)
		for i := range upper {
			upper[i] = 1
		}
		type hs struct {
			n geom.Vector
			b float64
		}
		var cuts []hs
		for c := 0; c < 5; c++ {
			n := make(geom.Vector, d)
			for j := range n {
				n[j] = 0.1 + rng.Float64()
			}
			cuts = append(cuts, hs{n, 0.3 + rng.Float64()})
		}
		build := func(order []int) *Polytope {
			p, _ := NewBox(upper)
			for _, i := range order {
				if _, err := p.AddHalfspace(cuts[i].n, cuts[i].b); err != nil {
					t.Fatal(err)
				}
			}
			return p
		}
		fwd := make([]int, len(cuts))
		rev := make([]int, len(cuts))
		for i := range cuts {
			fwd[i] = i
			rev[i] = len(cuts) - 1 - i
		}
		a, b := build(fwd), build(rev)
		if a.NumVertices() != b.NumVertices() {
			t.Fatalf("trial %d: vertex counts differ: %d vs %d", trial, a.NumVertices(), b.NumVertices())
		}
		// Same geometric vertex sets.
		for _, va := range a.Vertices() {
			found := false
			for _, vb := range b.Vertices() {
				if va.Point.Equal(vb.Point, 1e-7) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: vertex %v missing in reversed build", trial, va.Point)
			}
		}
	}
}

// TestMaxDotEmptyDirection checks support in the zero direction.
func TestMaxDotZeroDirection(t *testing.T) {
	p := newBoxT(t, 1, 1)
	got, v := p.MaxDot(geom.Vector{0, 0})
	if got != 0 || v == nil {
		t.Fatalf("MaxDot(0) = %v, %v", got, v)
	}
}

// TestContains checks the H-representation membership helper.
func TestContains(t *testing.T) {
	p := newBoxT(t, 1, 1)
	if !p.Contains(geom.Vector{0.5, 0.5}, 0) {
		t.Fatal("interior point rejected")
	}
	if p.Contains(geom.Vector{1.5, 0.5}, 1e-9) {
		t.Fatal("exterior point accepted")
	}
}
