package kregret

// BenchmarkPaper is the baseline suite behind `make bench`: the
// paper-scale hot paths (GeoGreedy at n=100k d=4, the exact and
// sampled evaluators, the candidate preprocessing) with the worker
// count taken from the -kregret.parallelism flag, so one binary
// measures both the sequential path and any fan-out width.
// cmd/benchbaseline runs it at parallelism 1 and N, diffs ns/op and
// allocs/op, and writes BENCH_<rev>.json.

import (
	"context"
	"flag"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/happy"
	"repro/internal/skyline"
)

var (
	benchParallelism = flag.Int("kregret.parallelism", 1,
		"worker count for BenchmarkPaper (1 = exact sequential path, 0 = process default)")
	benchPaperN = flag.Int("kregret.benchn", 100000,
		"dataset size for BenchmarkPaper (lower it for smoke runs)")
)

const benchPaperD = 4

// Sharded cold-query shape: the partition–merge pair is gated on
// total work, not fan-out — the bench box may be a single hardware
// thread — so the shard count stays small (on anti-correlated data
// every extra shard inflates the merged survivor union and with it
// the exact work after the merge) and ε = 0.1 is the usual ten-percent
// regret budget from the paper's experiment grid.
const (
	benchShards   = 2
	benchShardEps = 0.1
)

var (
	paperOnce sync.Once
	paperPts  []geom.Vector
	paperSel  []int
	paperEval *core.EvalIndex
	paperErr  error
)

// paperInstance builds the shared BenchmarkPaper fixture once: the
// anti-correlated instance, a reference selection to evaluate, and a
// skyline-pruned EvalIndex — the evaluation substrate Dataset holds,
// so the evaluator benchmarks measure the library's real serving
// path (flat kernels + extreme-set pruning) rather than a transient
// per-call rebuild.
func paperInstance(b *testing.B) ([]geom.Vector, []int, *core.EvalIndex) {
	b.Helper()
	paperOnce.Do(func() {
		paperPts, paperErr = dataset.AntiCorrelated(*benchPaperN, benchPaperD, 20140331)
		if paperErr != nil {
			return
		}
		var res *core.Result
		res, paperErr = core.GeoGreedyParCtx(context.Background(), paperPts, 20, *benchParallelism)
		if paperErr != nil {
			return
		}
		paperSel = res.Indices
		var sky []int
		sky, paperErr = skyline.ComputeParallel(paperPts, *benchParallelism)
		if paperErr != nil {
			return
		}
		paperEval, paperErr = core.NewEvalIndex(paperPts)
		if paperErr != nil {
			return
		}
		paperErr = paperEval.SetExtreme(sky)
	})
	if paperErr != nil {
		b.Fatal(paperErr)
	}
	return paperPts, paperSel, paperEval
}

func BenchmarkPaper(b *testing.B) {
	ctx := context.Background()
	w := *benchParallelism
	pts, sel, eval := paperInstance(b)

	b.Run("GeoGreedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.GeoGreedyParCtx(ctx, pts, 50, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MRRGeometric", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eval.MRRGeometricParCtx(ctx, sel, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MRRSampled1k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eval.MRRSampledParCtx(ctx, sel, 1000, 1, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MRRSampled1kFull", func(b *testing.B) {
		// The unpruned free-function path: a transient full-scan
		// EvalIndex per call, isolating what the extreme set saves.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.MRRSampledParCtx(ctx, pts, sel, 1000, 1, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Preprocess", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sky, err := skyline.ComputeParallel(pts, w)
			if err != nil {
				b.Fatal(err)
			}
			happy.ComputeAmongSkylineParallel(pts, sky, w)
		}
	})
	b.Run("PreprocessFold", func(b *testing.B) {
		// The delta-maintenance counterpart of Preprocess: one
		// insert+delete round-trip on a dataset whose candidate caches
		// are warm, so each mutation patches the cached skyline and
		// happy certificate through the epoch fold (DESIGN.md §16)
		// instead of recomputing them. The reads after each pair are
		// the serving path — they must find the successor epoch
		// pre-seeded. Includes the O(n) copy-on-write point clone, the
		// price of epoch isolation.
		ds, err := NewDataset(vecsToPoints(pts), WithoutNormalization(), WithParallelism(w))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ds.Skyline(); err != nil {
			b.Fatal(err)
		}
		if _, err := ds.HappyPoints(); err != nil {
			b.Fatal(err)
		}
		probe := append(Point(nil), pts[0]...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx, err := ds.Insert(probe)
			if err != nil {
				b.Fatal(err)
			}
			if err := ds.Delete(idx); err != nil {
				b.Fatal(err)
			}
			if _, err := ds.Skyline(); err != nil {
				b.Fatal(err)
			}
			if _, err := ds.HappyPoints(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ColdQuery", func(b *testing.B) {
		// End-to-end unsharded baseline for the sharded variant below:
		// build (the full global skyline → happy preprocess from cold
		// caches) plus one k=20 happy-point query. Dataset ingestion is
		// identical on both sides of the pair and untimed — the pair
		// compares the preprocessing strategies, not the shared copy-in
		// (the explicit collection drains the untimed allocation debt so
		// neither side pays the other's garbage inside the timed window).
		ps := vecsToPoints(pts)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ds, err := NewDataset(ps, WithoutNormalization(), WithParallelism(w))
			if err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			b.StartTimer()
			if _, err := ds.Query(20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ShardedColdQuery", func(b *testing.B) {
		// The partition–merge path at the same k: per-shard ε-dominance
		// cover, survivor union, one ε-kernel build, GeoGreedy on the
		// merged core. Ingestion and engine teardown are untimed, build
		// and query are timed — the benchbaseline diff gates this
		// entry's ns/op against ColdQuery's, because sharding exists to
		// beat the global pass and a regression here is a scale-wall
		// regression.
		ps := vecsToPoints(pts)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ds, err := NewDataset(ps, WithoutNormalization(), WithParallelism(w))
			if err != nil {
				b.Fatal(err)
			}
			runtime.GC()
			b.StartTimer()
			eng, err := NewEngine(ds, WithShardedServing(benchShards, benchShardEps))
			if err != nil {
				b.Fatal(err)
			}
			if s := eng.Stats(); s.Shards == 0 {
				b.Fatal("shard build fell back to unsharded serving")
			}
			if _, err := eng.Query(ctx, 20); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := eng.Shutdown(ctx); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("Greedy", func(b *testing.B) {
		// Greedy is LP-per-candidate and would take minutes at 100k;
		// bench a fixed-size slice so the suite stays minutes-total
		// while still exposing the per-candidate LP fan-out.
		n := len(pts)
		if n > 2000 {
			n = 2000
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.GreedyParCtx(ctx, pts[:n], 10, w); err != nil {
				b.Fatal(err)
			}
		}
	})
}
