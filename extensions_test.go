package kregret

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

func TestQueryExact2D(t *testing.T) {
	ds, err := NewDataset(testPoints(80, 2, 11))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ds.QueryExact2D(4)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := ds.Query(4)
	if err != nil {
		t.Fatal(err)
	}
	if exact.MRR > greedy.MRR+1e-6 {
		t.Fatalf("exact %v worse than greedy %v", exact.MRR, greedy.MRR)
	}
	// The reported MRR must match independent evaluation.
	mrr, err := ds.EvaluateMRR(exact.Indices)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mrr-exact.MRR) > 1e-9 {
		t.Fatalf("reported %v vs evaluated %v", exact.MRR, mrr)
	}
	// Wrong dimensionality.
	ds3, err := NewDataset(testPoints(20, 3, 12))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds3.QueryExact2D(4); err == nil {
		t.Fatal("3-d dataset accepted")
	}
	if _, err := ds.QueryExact2D(0); err != ErrBadK {
		t.Fatalf("k=0: %v", err)
	}
}

func TestQueryAverage(t *testing.T) {
	ds, err := NewDataset(testPoints(150, 3, 13))
	if err != nil {
		t.Fatal(err)
	}
	ans, avg, err := ds.QueryAverage(6, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Indices) != 6 {
		t.Fatalf("%d indices", len(ans.Indices))
	}
	if avg < 0 || avg > ans.MRR+1e-9 {
		t.Fatalf("average %v vs max %v", avg, ans.MRR)
	}
	if _, _, err := ds.QueryAverage(0, 100, 1); err != ErrBadK {
		t.Fatalf("k=0: %v", err)
	}
}

func TestInteractiveSessionFlow(t *testing.T) {
	ds, err := NewDataset(testPoints(120, 3, 14))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ds.NewInteractiveSession()
	if err != nil {
		t.Fatal(err)
	}
	hidden := Point{0.6, 0.3, 0.1}
	_, bound0, err := s.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		shown, err := s.Show(3)
		if err != nil {
			t.Fatal(err)
		}
		best, bestU := 0, math.Inf(-1)
		for i, idx := range shown {
			p := ds.Point(idx)
			u := hidden[0]*p[0] + hidden[1]*p[1] + hidden[2]*p[2]
			if u > bestU {
				best, bestU = i, u
			}
		}
		if err := s.Choose(best); err != nil {
			t.Fatal(err)
		}
	}
	if s.Rounds() != 6 {
		t.Fatalf("rounds %d", s.Rounds())
	}
	_, bound, err := s.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if bound > bound0+1e-9 {
		t.Fatalf("bound rose: %v → %v", bound0, bound)
	}
	if _, err := s.EstimatedUtility(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexSaveLoad(t *testing.T) {
	ds, err := NewDataset(testPoints(120, 3, 15))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ds.BuildIndex()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf, ds); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf, ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{3, 5, 9} {
		a, err := idx.Query(k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Query(k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Indices, b.Indices) || a.MRR != b.MRR {
			t.Fatalf("k=%d mismatch after load", k)
		}
	}
	// Loading against a different dataset must fail.
	other, err := NewDataset(testPoints(120, 3, 16))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := idx.Save(&buf2, ds); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(&buf2, other); err != ErrIndexMismatch {
		t.Fatalf("mismatched load: %v", err)
	}
	// Garbage must fail.
	if _, err := LoadIndex(bytes.NewBufferString("nope"), ds); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFacesAndCriticalRatio(t *testing.T) {
	ds, err := NewDataset(testPoints(60, 3, 31))
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ds.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	faces, err := ds.Faces(ans.Indices)
	if err != nil {
		t.Fatal(err)
	}
	if len(faces) == 0 {
		t.Fatal("no faces")
	}
	// Selected tuples have critical ratio 1; the regret witness < 1.
	for _, i := range ans.Indices {
		cr, err := ds.CriticalRatio(ans.Indices, i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cr-1) > 1e-7 {
			t.Fatalf("selected tuple cr %v", cr)
		}
	}
	if ans.MRR > 1e-6 {
		_, witness, err := ds.WorstUtility(ans.Indices)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := ds.CriticalRatio(ans.Indices, witness)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs((1-cr)-ans.MRR) > 1e-6 {
			t.Fatalf("witness cr %v inconsistent with MRR %v", cr, ans.MRR)
		}
	}
	if _, err := ds.CriticalRatio(ans.Indices, -1); err == nil {
		t.Fatal("negative tuple accepted")
	}
	if _, err := ds.Faces(nil); err == nil {
		t.Fatal("empty selection accepted")
	}
}
