package kregret

// The crash-point sweep: the durability claim of DESIGN.md §15 tested
// literally. A scripted mutation history is recorded along with the
// dataset state and query answer after every acknowledged mutation
// (the incremental controls); then the WAL is truncated at EVERY byte
// offset — modeling a kill at that exact point of the write — and
// each truncation must recover to exactly one of the recorded states,
// with query answers byte-identical (math.Float64bits) to that
// state's control. No offset may produce an error, a panic, or a
// state the acknowledged history never passed through.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// crashOp is one scripted mutation: a point to insert, or a delete of
// index del when pt is nil.
type crashOp struct {
	pt  Point
	del int
}

// crashScript mixes inserts (dominating, dominated, skyline-edge) and
// deletes so replay exercises index shifting, not just appends.
func crashScript() []crashOp {
	return []crashOp{
		{pt: Point{0.95, 0.95}},
		{pt: Point{0.05, 0.05}},
		{del: 3},
		{pt: Point{0.2, 0.97}},
		{del: 0},
		{pt: Point{0.97, 0.2}},
		{pt: Point{0.5, 0.01}},
		{del: 7},
	}
}

// crashControl is the recorded state after mutation seq: every
// coordinate as raw float bits, plus the control answer.
type crashControl struct {
	bits [][]uint64
	ans  *Answer
}

func datasetBits(t *testing.T, d *Dataset) [][]uint64 {
	t.Helper()
	bits := make([][]uint64, d.Len())
	for i := range bits {
		p := d.Point(i)
		row := make([]uint64, len(p))
		for j, c := range p {
			row[j] = math.Float64bits(c)
		}
		bits[i] = row
	}
	return bits
}

func sameBits(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// runCrashScript applies the script to a fresh WAL-backed dataset in
// dir, recording a control per sequence number (control[0] is the
// initial state). compactAt >= 0 compacts after that many mutations,
// putting a snapshot watermark in the middle of the history.
func runCrashScript(t *testing.T, dir string, compactAt int) (*Dataset, map[uint64]*crashControl) {
	t.Helper()
	ds := mutGrid(t, WithWAL(filepath.Join(dir, "crash.wal"), filepath.Join(dir, "crash.snap")))
	controls := map[uint64]*crashControl{}
	record := func() {
		ans, err := ds.Query(2)
		if err != nil {
			t.Fatalf("control query at seq %d: %v", ds.Seq(), err)
		}
		controls[ds.Seq()] = &crashControl{bits: datasetBits(t, ds), ans: ans}
	}
	record()
	for i, op := range crashScript() {
		if op.pt != nil {
			if _, err := ds.Insert(op.pt); err != nil {
				t.Fatalf("script insert %d: %v", i, err)
			}
		} else {
			if err := ds.Delete(op.del); err != nil {
				t.Fatalf("script delete %d: %v", i, err)
			}
		}
		record()
		if i+1 == compactAt {
			if err := ds.Compact(); err != nil {
				t.Fatalf("script compact: %v", err)
			}
		}
	}
	return ds, controls
}

// verifyRecovered checks one recovered dataset against the control of
// its sequence number.
func verifyRecovered(t *testing.T, rec *Dataset, controls map[uint64]*crashControl, label string) {
	t.Helper()
	ctl, ok := controls[rec.Seq()]
	if !ok {
		t.Fatalf("%s: recovered to seq %d, which the history never acknowledged", label, rec.Seq())
	}
	if !sameBits(datasetBits(t, rec), ctl.bits) {
		t.Fatalf("%s: recovered state at seq %d differs from control", label, rec.Seq())
	}
	ans, err := rec.Query(2)
	if err != nil {
		t.Fatalf("%s: recovered query: %v", label, err)
	}
	sameAnswerBits(t, ans, ctl.ans)
}

// sweepTruncations recovers (snapshot, wal[:cut]) for every cut and
// verifies byte-identity with the control of the recovered seq. The
// recovered seq must grow monotonically with the cut and reach the
// full history at the final offset.
func sweepTruncations(t *testing.T, srcDir string, controls map[uint64]*crashControl, wantFinal uint64) {
	t.Helper()
	walBytes, err := os.ReadFile(filepath.Join(srcDir, "crash.wal"))
	if err != nil {
		t.Fatal(err)
	}
	snapBytes, err := os.ReadFile(filepath.Join(srcDir, "crash.snap"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "crash.snap")
	walPath := filepath.Join(dir, "crash.wal")
	if err := os.WriteFile(snapPath, snapBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	prevSeq := uint64(0)
	for cut := 0; cut <= len(walBytes); cut++ {
		if err := os.WriteFile(walPath, walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(snapPath, walPath)
		if err != nil {
			t.Fatalf("cut at byte %d/%d: recovery failed: %v", cut, len(walBytes), err)
		}
		if rec.Seq() < prevSeq {
			t.Fatalf("cut at byte %d: recovered seq %d went backwards from %d", cut, rec.Seq(), prevSeq)
		}
		prevSeq = rec.Seq()
		verifyRecovered(t, rec, controls, fmt.Sprintf("cut at byte %d", cut))
		if err := rec.Close(); err != nil {
			t.Fatalf("cut at byte %d: close: %v", cut, err)
		}
	}
	if prevSeq != wantFinal {
		t.Fatalf("full-length log recovered seq %d, want the complete history %d", prevSeq, wantFinal)
	}
}

// TestCrashPointSweepEveryByte is the core torn-tail matrix: a crash
// at any byte of the log recovers the exact acknowledged prefix.
func TestCrashPointSweepEveryByte(t *testing.T) {
	dir := t.TempDir()
	ds, controls := runCrashScript(t, dir, -1)
	final := ds.Seq()
	// Crash model: the process dies — the log is never closed.
	sweepTruncations(t, dir, controls, final)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashPointSweepAcrossCompaction repeats the matrix with a
// compaction in the middle of the history: the snapshot watermark
// must absorb the folded prefix, so every truncation of the
// post-compaction log still lands on an acknowledged state — never
// on a double-applied or rewound one.
func TestCrashPointSweepAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	ds, controls := runCrashScript(t, dir, 4)
	final := ds.Seq()
	sweepTruncations(t, dir, controls, final)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
}
